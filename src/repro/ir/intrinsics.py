"""Default runtime-intrinsic registry.

Parallel runtimes appear to the compiler as *calls*, exactly as in the
paper (§V-A): MPI communication is ``mpi.*`` calls, the Julia runtime is
``jl.*`` calls.  The AD engine recognizes these by name and applies the
registered adjoint handler; new frameworks can register additional
intrinsics plus handlers without touching the core (§V's three steps).

The ``cache.*`` intrinsics implement Enzyme's allocation strategy 3
(§IV-C): dynamically grown caches for values computed in loops of
unknown trip count.  They are emitted only by the AD engine itself.
"""

from __future__ import annotations

from .types import F64, I1, I64, Ptr, Request, Token, Void


def register_default_intrinsics(module) -> None:
    from .function import IntrinsicInfo

    def reg(name, arg_types, ret=Void, effects="any", variadic=False, doc=""):
        module.register_intrinsic(
            IntrinsicInfo(name, arg_types, ret, effects, variadic, doc))

    pf64 = Ptr(F64)

    # --- MPI (identified by callee name, as Enzyme identifies MPI_Isend
    # --- etc. in LLVM IR) -------------------------------------------------
    reg("mpi.comm_rank", [], I64, effects="pure",
        doc="Rank of the calling process in COMM_WORLD.")
    reg("mpi.comm_size", [], I64, effects="pure",
        doc="Number of ranks in COMM_WORLD.")
    reg("mpi.send", [pf64, I64, I64, I64], effects="any",
        doc="Blocking send: (buf, count, dest, tag).")
    reg("mpi.recv", [pf64, I64, I64, I64], effects="any",
        doc="Blocking receive: (buf, count, source, tag).")
    reg("mpi.isend", [pf64, I64, I64, I64], Request, effects="any",
        doc="Nonblocking send: (buf, count, dest, tag) -> request.")
    reg("mpi.irecv", [pf64, I64, I64, I64], Request, effects="any",
        doc="Nonblocking receive: (buf, count, source, tag) -> request.")
    reg("mpi.wait", [Request], effects="any",
        doc="Wait for a nonblocking operation to complete.")
    reg("mpi.allreduce", [pf64, pf64, I64], effects="any",
        doc="Allreduce (sendbuf, recvbuf, count); attr 'op' in "
            "{'sum','min','max'}.")
    reg("mpi.reduce", [pf64, pf64, I64, I64], effects="any",
        doc="Reduce to root: (sendbuf, recvbuf, count, root); attr 'op'.")
    reg("mpi.bcast", [pf64, I64, I64], effects="any",
        doc="Broadcast (buf, count, root).")
    reg("mpi.barrier", [], effects="any", doc="Barrier over COMM_WORLD.")

    # --- Julia runtime ----------------------------------------------------
    reg("jl.arrayptr", [pf64], pf64, effects="pure",
        doc="Extract the data pointer from a GC array descriptor. "
            "Identity at run time, opaque to alias analysis: models the "
            "extra indirection of Julia arrays (paper §VIII).")
    reg("jl.gc_preserve_begin", [], Token, effects="any", variadic=True,
        doc="Root the listed buffers against collection until the "
            "matching gc_preserve_end (paper §VI-C2).")
    reg("jl.gc_preserve_end", [Token], effects="any")
    reg("jl.safepoint", [], effects="any",
        doc="GC safepoint: unreachable GC buffers may be collected here.")

    # --- task runtime (wait is a call; spawn is a region op) --------------
    from .types import Task
    reg("task.wait", [Task], effects="any",
        doc="Wait for a spawned task (Base.wait).")

    # --- misc runtime -----------------------------------------------------
    reg("rt.num_threads", [], I64, effects="pure",
        doc="Configured shared-memory thread count.")
    reg("rt.buflen", [], I64, effects="pure", variadic=True,
        doc="Element count from a pointer to the end of its buffer "
            "(snapshot sizing for checkpointed/implicit adjoints; "
            "variadic so any pointer element type is accepted).")
    reg("rt.assert_ge", [F64, F64], effects="any",
        doc="Abort if arg0 < arg1 (used by app error checks).")

    # --- AD-internal dynamic caches (allocation strategy 3, §IV-C) --------
    reg("cache.create", [], Ptr(F64), effects="any",
        doc="Create a growable cache; elem type via attr 'elem'.")
    reg("cache.push", [Ptr(F64), F64], effects="any", variadic=True,
        doc="Append a value to a dynamic cache.")
    reg("cache.pop", [Ptr(F64)], F64, effects="any",
        doc="Pop the most recent value from a dynamic cache.")
    reg("cache.destroy", [Ptr(F64)], effects="any")
