"""IRBuilder: the authoring DSL for repro IR.

The builder keeps an insertion-point stack; structured ops are written
with ``with`` blocks, and SSA values support Python operator overloads
that route back through the active builder::

    b = IRBuilder(module)
    with b.function("axpy", [("a", F64), ("x", Ptr()), ("y", Ptr()),
                             ("n", I64)]) as fn:
        a, x, y, n = fn.args
        with b.parallel_for(0, n) as i:
            b.store(a * b.load(x, i) + b.load(y, i), y, i)
        b.ret()
"""

from __future__ import annotations

import contextlib
from typing import Optional, Sequence, Union

from .function import Function, Module
from .opinfo import OP_INFO
from .ops import (
    AllocOp,
    AtomicRMWOp,
    BarrierOp,
    Block,
    CacheCreateOp,
    CachePopOp,
    CachePushOp,
    CallOp,
    ComputeOp,
    ConditionOp,
    ForOp,
    ForkOp,
    FreeOp,
    IfOp,
    LoadOp,
    MemcpyOp,
    MemsetOp,
    Op,
    ParallelForOp,
    PtrAddOp,
    ReturnOp,
    SpawnOp,
    StoreOp,
    WhileOp,
)
from .types import F64, I1, I64, Ptr, Type, Void
from .values import (
    Constant,
    Value,
    as_value,
    pop_builder,
    push_builder,
)

Number = Union[int, float, bool, Value]


class IRBuilder:
    """Builds IR into a module, one function at a time."""

    def __init__(self, module: Optional[Module] = None) -> None:
        self.module = module if module is not None else Module()
        self._blocks: list[Block] = []
        self._fn: Optional[Function] = None

    # ------------------------------------------------------------------
    # Insertion point management
    # ------------------------------------------------------------------
    @property
    def block(self) -> Block:
        if not self._blocks:
            raise RuntimeError("builder has no active insertion point")
        return self._blocks[-1]

    def emit(self, op: Op):
        self.block.append(op)
        return op.result if op.result is not None else op

    @contextlib.contextmanager
    def at(self, block: Block):
        """Temporarily redirect emission into ``block``."""
        self._blocks.append(block)
        try:
            yield block
        finally:
            self._blocks.pop()

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def function(self, name: str, args: Sequence[tuple[str, Type]],
                 ret: Type = Void,
                 arg_attrs: Optional[list[dict]] = None):
        fn = Function(name, list(args), ret, arg_attrs)
        self.module.add_function(fn)
        self._fn = fn
        self._blocks.append(fn.body)
        push_builder(self)
        try:
            yield fn
            if ret is Void and (
                    not fn.body.ops or fn.body.ops[-1].opcode != "return"):
                fn.body.append(ReturnOp([]))
        finally:
            pop_builder(self)
            self._blocks.pop()
            self._fn = None

    def ret(self, value: Optional[Number] = None):
        vals = [] if value is None else [self._coerce(value, self._ret_type())]
        return self.emit(ReturnOp(vals))

    def _ret_type(self) -> Type:
        return self._fn.ret_type if self._fn is not None else F64

    # ------------------------------------------------------------------
    # Coercion helpers
    # ------------------------------------------------------------------
    def _coerce(self, x: Number, want: Optional[Type] = None) -> Value:
        v = as_value(x, want)
        if want is not None and v.type is not want:
            if want is F64 and v.type is I64:
                return self.itof(v)
            if want is I64 and v.type is F64 and isinstance(v, Constant) \
                    and float(v.value).is_integer():
                return Constant(int(v.value), I64)
            raise TypeError(f"cannot coerce {v.type} to {want}")
        return v

    def _coerce_pair(self, a: Number, b: Number) -> tuple[Value, Value]:
        av, bv = as_value(a), as_value(b)
        if av.type is bv.type:
            return av, bv
        if av.type is F64 and bv.type is I64:
            return av, self.itof(bv)
        if av.type is I64 and bv.type is F64:
            return self.itof(av), bv
        raise TypeError(f"incompatible operand types {av.type} / {bv.type}")

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _binop(self, fop: str, iop: str, a: Number, b: Number):
        av, bv = self._coerce_pair(a, b)
        opcode = fop if av.type is F64 else iop
        return self.emit(ComputeOp(opcode, [av, bv]))

    def add(self, a, b):
        return self._binop("add", "iadd", a, b)

    def sub(self, a, b):
        return self._binop("sub", "isub", a, b)

    def mul(self, a, b):
        return self._binop("mul", "imul", a, b)

    def div(self, a, b):
        av, bv = self._coerce_pair(a, b)
        if av.type is I64:
            return self.emit(ComputeOp("idiv", [av, bv]))
        return self.emit(ComputeOp("div", [av, bv]))

    def idiv(self, a, b):
        return self._binop("idiv", "idiv", a, b)

    def imod(self, a, b):
        return self._binop("imod", "imod", a, b)

    def pow(self, a, b):
        return self.emit(ComputeOp(
            "pow", list(self._coerce_pair(self._tofloat(a), self._tofloat(b)))))

    def min(self, a, b):
        return self._binop("min", "imin", a, b)

    def max(self, a, b):
        return self._binop("max", "imax", a, b)

    def fma(self, a, b, c):
        return self.emit(ComputeOp("fma", [
            self._coerce(a, F64), self._coerce(b, F64), self._coerce(c, F64)]))

    def copysign(self, a, b):
        return self.emit(ComputeOp(
            "copysign", [self._coerce(a, F64), self._coerce(b, F64)]))

    def _tofloat(self, x: Number) -> Value:
        v = as_value(x)
        return self.itof(v) if v.type is I64 else v

    def _unop(self, fop: str, iop: Optional[str], x: Number):
        v = as_value(x)
        if v.type is I64:
            if iop is None:
                v = self.itof(v)
            else:
                return self.emit(ComputeOp(iop, [v]))
        return self.emit(ComputeOp(fop, [v]))

    def neg(self, x):
        return self._unop("neg", "ineg", x)

    def abs(self, x):
        return self._unop("abs", None, x)

    def sqrt(self, x):
        return self._unop("sqrt", None, x)

    def cbrt(self, x):
        return self._unop("cbrt", None, x)

    def sin(self, x):
        return self._unop("sin", None, x)

    def cos(self, x):
        return self._unop("cos", None, x)

    def tan(self, x):
        return self._unop("tan", None, x)

    def exp(self, x):
        return self._unop("exp", None, x)

    def log(self, x):
        return self._unop("log", None, x)

    def floor(self, x):
        return self._unop("floor", None, x)

    def itof(self, x):
        return self.emit(ComputeOp("itof", [as_value(x)]))

    def ftoi(self, x):
        return self.emit(ComputeOp("ftoi", [as_value(x)]))

    def cmp(self, pred: str, a: Number, b: Number):
        if pred not in OP_INFO["cmp"].attrs["preds"]:
            raise ValueError(f"unknown comparison predicate {pred!r}")
        av, bv = self._coerce_pair(a, b)
        return self.emit(ComputeOp("cmp", [av, bv], attrs={"pred": pred}))

    def select(self, cond: Value, a: Number, b: Number):
        av, bv = self._coerce_pair(a, b)
        return self.emit(ComputeOp("select", [cond, av, bv]))

    def logical_and(self, a: Value, b: Value):
        return self.emit(ComputeOp("and", [a, b]))

    def logical_or(self, a: Value, b: Value):
        return self.emit(ComputeOp("or", [a, b]))

    def logical_not(self, a: Value):
        return self.emit(ComputeOp("not", [a]))

    def const(self, value, type: Optional[Type] = None) -> Constant:
        return Constant(value, type)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def alloc(self, count: Number, elem: Type = F64, space: str = "stack",
              name: str = ""):
        return self.emit(AllocOp(self._coerce(count, I64), elem, space, name))

    def free(self, ptr: Value):
        return self.emit(FreeOp(ptr))

    def load(self, ptr: Value, idx: Number = 0):
        return self.emit(LoadOp(ptr, self._coerce(idx, I64)))

    def store(self, value: Number, ptr: Value, idx: Number = 0):
        want = ptr.type.elem
        return self.emit(StoreOp(self._coerce(value, want), ptr,
                                 self._coerce(idx, I64)))

    def atomic_add(self, value: Number, ptr: Value, idx: Number = 0):
        return self.emit(AtomicRMWOp("add", self._coerce(value, F64), ptr,
                                     self._coerce(idx, I64)))

    def atomic_min(self, value: Number, ptr: Value, idx: Number = 0):
        return self.emit(AtomicRMWOp("min", self._coerce(value, F64), ptr,
                                     self._coerce(idx, I64)))

    def atomic_max(self, value: Number, ptr: Value, idx: Number = 0):
        return self.emit(AtomicRMWOp("max", self._coerce(value, F64), ptr,
                                     self._coerce(idx, I64)))

    def ptradd(self, ptr: Value, idx: Number):
        return self.emit(PtrAddOp(ptr, self._coerce(idx, I64)))

    def memset(self, ptr: Value, value: Number, count: Number):
        return self.emit(MemsetOp(ptr, self._coerce(value, ptr.type.elem),
                                  self._coerce(count, I64)))

    def memcpy(self, dst: Value, src: Value, count: Number):
        return self.emit(MemcpyOp(dst, src, self._coerce(count, I64)))

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def call(self, callee: str, *args: Number, **attrs):
        target = self.module.lookup_callee(callee)
        coerced: list[Value] = []
        if isinstance(target, Function):
            want_types = [a.type for a in target.args]
            if len(args) != len(want_types):
                raise TypeError(
                    f"{callee} expects {len(want_types)} args, got {len(args)}")
            for a, w in zip(args, want_types):
                coerced.append(self._coerce(a, w))
        else:
            want_types = target.arg_types
            if not target.variadic and len(args) != len(want_types):
                raise TypeError(
                    f"{callee} expects {len(want_types)} args, "
                    f"got {len(args)}")
            for i, a in enumerate(args):
                want = want_types[i] if i < len(want_types) else None
                if want is None and not target.variadic:
                    raise TypeError(f"too many arguments to {callee}")
                v = as_value(a)
                if want is not None and v.type is not want:
                    v = self._coerce(a, want)
                coerced.append(v)
        return self.emit(CallOp(callee, coerced, target.ret_type, attrs))

    # ------------------------------------------------------------------
    # Structured control flow
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def for_(self, lb: Number, ub: Number, step: Number = 1,
             simd: bool = False, name: str = "i",
             adjoint: Optional[str] = None):
        op = ForOp(self._coerce(lb, I64), self._coerce(ub, I64),
                   self._coerce(step, I64), simd=simd, ivar_name=name)
        if adjoint is not None:
            op.attrs["adjoint"] = adjoint
        self.emit(op)
        with self.at(op.body):
            yield op.ivar

    @contextlib.contextmanager
    def workshare(self, lb: Number, ub: Number, step: Number = 1,
                  nowait: bool = False, simd: bool = True, name: str = "i"):
        """An ``omp for`` worksharing loop; must be inside a fork region."""
        op = ForOp(self._coerce(lb, I64), self._coerce(ub, I64),
                   self._coerce(step, I64), workshare=True, nowait=nowait,
                   simd=simd, ivar_name=name)
        self.emit(op)
        with self.at(op.body):
            yield op.ivar

    @contextlib.contextmanager
    def parallel_for(self, lb: Number, ub: Number, framework: str = "openmp",
                     schedule: str = "static", name: str = "i"):
        op = ParallelForOp(self._coerce(lb, I64), self._coerce(ub, I64),
                           framework=framework, ivar_name=name,
                           schedule=schedule)
        self.emit(op)
        with self.at(op.body):
            yield op.ivar

    @contextlib.contextmanager
    def fork(self, num_threads: Number = 0, framework: str = "openmp"):
        op = ForkOp(self._coerce(num_threads, I64), framework=framework)
        self.emit(op)
        with self.at(op.body):
            yield op.tid, op.nthreads

    def barrier(self):
        return self.emit(BarrierOp())

    @contextlib.contextmanager
    def if_(self, cond: Value):
        op = IfOp(cond)
        self.emit(op)
        with self.at(op.then_body):
            yield op

    @contextlib.contextmanager
    def else_(self):
        if not self.block.ops or self.block.ops[-1].opcode != "if":
            raise RuntimeError("else_() must immediately follow an if_()")
        op = self.block.ops[-1]
        with self.at(op.else_body):
            yield op

    @contextlib.contextmanager
    def while_(self, name: str = "it"):
        """Do-while loop; the body must end with :meth:`loop_while`."""
        op = WhileOp(ivar_name=name)
        self.emit(op)
        with self.at(op.body):
            yield op.ivar
        if not op.body.ops or op.body.ops[-1].opcode != "condition":
            raise RuntimeError("while_ body must end with loop_while(cond)")

    def loop_while(self, cond: Value):
        return self.emit(ConditionOp(cond))

    @contextlib.contextmanager
    def spawn(self, framework: str = "julia"):
        op = SpawnOp(framework=framework)
        self.emit(op)
        with self.at(op.body):
            yield op.result

    def wait_task(self, task: Value):
        return self.call("task.wait", task)

    # ------------------------------------------------------------------
    # Dynamic caches (emitted by the AD engine)
    # ------------------------------------------------------------------
    def cache_create(self):
        return self.emit(CacheCreateOp())

    def cache_push(self, handle: Value, value: Value):
        return self.emit(CachePushOp(handle, value))

    def cache_pop(self, handle: Value, result_type: Type):
        return self.emit(CachePopOp(handle, result_type))
