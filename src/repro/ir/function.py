"""Functions and modules."""

from __future__ import annotations

from typing import Optional

from .ops import Block, Op
from .types import Type, Void
from .values import Argument, Value


class Function:
    """A function: a name, typed arguments, one body region, a return type."""

    def __init__(self, name: str,
                 args: list[tuple[str, Type]],
                 ret_type: Type = Void,
                 arg_attrs: Optional[list[dict]] = None) -> None:
        self.name = name
        self.ret_type = ret_type
        self.args: list[Argument] = []
        arg_attrs = arg_attrs or [{} for _ in args]
        for i, ((aname, atype), attrs) in enumerate(zip(args, arg_attrs)):
            self.args.append(Argument(atype, aname, i, attrs))
        self.body = Block()
        self.body.parent_function = self
        #: Free-form function attributes (e.g. {"noinline": True}).
        self.attrs: dict = {}

    def arg(self, name: str) -> Argument:
        for a in self.args:
            if a.name == name:
                return a
        raise KeyError(f"function {self.name} has no argument {name!r}")

    def walk(self):
        yield from self.body.walk()

    def num_ops(self) -> int:
        return sum(1 for _ in self.walk())

    def __repr__(self) -> str:
        sig = ", ".join(f"{a.name}: {a.type}" for a in self.args)
        return f"<Function {self.name}({sig}) -> {self.ret_type}>"


class IntrinsicInfo:
    """Registration record for a runtime intrinsic.

    ``effects`` is one of:
      * "pure"   — no side effects, safe to CSE/hoist/rematerialize
      * "read"   — reads memory through pointer args only
      * "write"  — may read and write memory through pointer args
      * "any"    — arbitrary effects (synchronization, I/O, scheduling)
    """

    def __init__(self, name: str, arg_types: list[Type],
                 ret_type: Type = Void, effects: str = "any",
                 variadic: bool = False, doc: str = "") -> None:
        self.name = name
        self.arg_types = arg_types
        self.ret_type = ret_type
        self.effects = effects
        self.variadic = variadic
        self.doc = doc


class Module:
    """A translation unit: functions plus the intrinsic registry."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}
        self.intrinsics: dict[str, IntrinsicInfo] = {}
        from .intrinsics import register_default_intrinsics
        register_default_intrinsics(self)

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValueError(f"function {fn.name!r} already defined")
        self.functions[fn.name] = fn
        return fn

    def get_function(self, name: str) -> Function:
        return self.functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def register_intrinsic(self, info: IntrinsicInfo) -> None:
        self.intrinsics[info.name] = info

    def lookup_callee(self, name: str):
        """Resolve a callee name to a Function or IntrinsicInfo."""
        if name in self.functions:
            return self.functions[name]
        if name in self.intrinsics:
            return self.intrinsics[name]
        raise KeyError(f"unknown callee {name!r}")

    def callee_ret_type(self, name: str) -> Type:
        target = self.lookup_callee(name)
        return target.ret_type

    def num_ops(self) -> int:
        return sum(f.num_ops() for f in self.functions.values())

    def clone_function(self, src_name: str, dst_name: str) -> Function:
        """Deep-copy a function under a new name (used by AD and passes)."""
        src = self.functions[src_name]
        dst = Function(dst_name, [(a.name, a.type) for a in src.args],
                       src.ret_type, [dict(a.attrs) for a in src.args])
        dst.attrs = dict(src.attrs)
        vmap: dict[Value, Value] = {
            sa: da for sa, da in zip(src.args, dst.args)
        }
        for op in src.body.ops:
            dst.body.append(op.clone(vmap))
        self.add_function(dst)
        return dst
