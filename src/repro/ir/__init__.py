"""repro.ir — the SSA compiler IR substrate.

This package is the stand-in for LLVM IR in the reproduction: an SSA,
structured-control-flow IR with an LLVM-style memory model, a builder
DSL, a verifier, and a printer.  The AD engine (:mod:`repro.ad`) and the
optimization passes (:mod:`repro.passes`) are IR-to-IR transformations,
exactly as Enzyme is an LLVM-pass.
"""

from .builder import IRBuilder
from .function import Function, IntrinsicInfo, Module
from .opinfo import OP_INFO
from .ops import (
    AllocOp,
    AtomicRMWOp,
    BarrierOp,
    Block,
    CallOp,
    ComputeOp,
    ConditionOp,
    ForOp,
    ForkOp,
    FreeOp,
    IfOp,
    LoadOp,
    MemcpyOp,
    MemsetOp,
    Op,
    ParallelForOp,
    PtrAddOp,
    ReturnOp,
    SpawnOp,
    StoreOp,
    WhileOp,
)
from .parser import ParseError, parse_function, parse_module, parse_type
from .printer import print_function, print_module
from .types import (
    F64,
    I1,
    I64,
    PointerType,
    Ptr,
    Request,
    Task,
    Token,
    Type,
    Void,
)
from .values import Argument, BlockArg, Constant, Result, Value, as_value
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "IRBuilder", "Function", "Module", "IntrinsicInfo", "OP_INFO",
    "AllocOp", "AtomicRMWOp", "BarrierOp", "Block", "CallOp", "ComputeOp",
    "ConditionOp", "ForOp", "ForkOp", "FreeOp", "IfOp", "LoadOp",
    "MemcpyOp", "MemsetOp", "Op", "ParallelForOp", "PtrAddOp", "ReturnOp",
    "SpawnOp", "StoreOp", "WhileOp",
    "ParseError", "parse_function", "parse_module", "parse_type",
    "print_function", "print_module",
    "F64", "I1", "I64", "PointerType", "Ptr", "Request", "Task", "Token",
    "Type", "Void",
    "Argument", "BlockArg", "Constant", "Result", "Value", "as_value",
    "VerificationError", "verify_function", "verify_module",
]
