"""Textual printer for the repro IR (debugging, tests, goldens)."""

from __future__ import annotations

import io

from .function import Function, Module
from .ops import Block, Op
from .values import Argument, BlockArg, Constant, Result, Value


class _Namer:
    def __init__(self) -> None:
        self.names: dict[Value, str] = {}
        self.counter = 0

    def name(self, v: Value) -> str:
        if isinstance(v, Constant):
            return repr(v.value)
        if v in self.names:
            return self.names[v]
        if isinstance(v, (Argument, BlockArg)) and v.name:
            n = f"%{v.name}"
        else:
            n = f"%{self.counter}"
            self.counter += 1
        # Disambiguate duplicates.
        while n in self.names.values():
            n = f"{n}_{self.counter}"
            self.counter += 1
        self.names[v] = n
        return n


def print_module(module: Module) -> str:
    out = io.StringIO()
    for fn in module.functions.values():
        out.write(print_function(fn))
        out.write("\n")
    return out.getvalue()


def print_function(fn: Function) -> str:
    out = io.StringIO()
    namer = _Namer()
    args = ", ".join(
        f"{namer.name(a)}: {a.type}"
        + ("".join(f" {k}" if val is True else f" {k}={val}"
                   for k, val in sorted(a.attrs.items()) if val))
        for a in fn.args)
    out.write(f"func @{fn.name}({args}) -> {fn.ret_type} {{\n")
    _print_block(fn.body, out, namer, indent=1)
    out.write("}\n")
    return out.getvalue()


class _OpsView:
    """Duck-typed block holding a chosen op list (for print_op)."""

    __slots__ = ("ops",)

    def __init__(self, ops: list) -> None:
        self.ops = ops


def _op_context(op: Op) -> str:
    """Enclosing-region path of an op, e.g. ``@fn / fork / if``."""
    parts = []
    blk = op.parent
    while blk is not None:
        pop = blk.parent_op
        if pop is None:
            fn = blk.parent_function
            if fn is not None:
                parts.append(f"@{getattr(fn, 'name', fn)}")
            break
        parts.append(pop.opcode)
        blk = pop.parent
    return " / ".join(reversed(parts))


def print_op(op: Op, context: bool = True) -> str:
    """Render one op as provenance for diagnostics: its printed form
    (region bodies elided) plus the enclosing-region path."""
    namer = _Namer()
    if op.regions:
        args = ", ".join(namer.name(v) for v in op.operands)
        line = f"{op.opcode} {args}".rstrip() + f"{_fmt_attrs(op)} {{...}}"
    else:
        out = io.StringIO()
        _print_block(_OpsView([op]), out, namer, indent=0)
        line = out.getvalue().rstrip("\n")
    if context:
        ctx = _op_context(op)
        if ctx:
            line += f"   [in {ctx}]"
    return line


def _fmt_attrs(op: Op, skip=("callee",)) -> str:
    items = [f'{k}={v!r}' for k, v in sorted(op.attrs.items())
             if k not in skip and v not in (False, None, {}, [])]
    return (" {" + ", ".join(items) + "}") if items else ""


def _print_block(block: Block, out, namer: _Namer, indent: int) -> None:
    pad = "  " * indent
    for op in block.ops:
        n = namer.name
        oc = op.opcode
        if oc == "load":
            out.write(f"{pad}{n(op.result)} = load {n(op.operands[0])}"
                      f"[{n(op.operands[1])}] : {op.result.type}\n")
        elif oc == "store":
            out.write(f"{pad}store {n(op.operands[0])}, {n(op.operands[1])}"
                      f"[{n(op.operands[2])}]\n")
        elif oc == "atomic":
            out.write(f"{pad}atomic_{op.attrs['kind']} {n(op.operands[0])}, "
                      f"{n(op.operands[1])}[{n(op.operands[2])}]"
                      f"{_fmt_attrs(op, skip=('callee', 'kind'))}\n")
        elif oc == "alloc":
            out.write(f"{pad}{n(op.result)} = alloc {n(op.operands[0])} x "
                      f"{op.result.type.elem} space={op.attrs['space']}\n")
        elif oc == "call":
            res = f"{n(op.result)} = " if op.result else ""
            args = ", ".join(n(v) for v in op.operands)
            out.write(f"{pad}{res}call @{op.attrs['callee']}({args})"
                      f"{_fmt_attrs(op)}\n")
        elif oc == "return":
            vals = ", ".join(n(v) for v in op.operands)
            out.write(f"{pad}return {vals}\n".rstrip() + "\n")
        elif oc == "for":
            kind = "workshare_for" if op.attrs.get("workshare") else "for"
            simd = " simd" if op.attrs.get("simd") else ""
            # Only the adjoint-strategy tag is printed (round-trips via
            # the parser); other loop attrs stay internal.
            adjoint = op.attrs.get("adjoint")
            tag = f" {{adjoint={adjoint!r}}}" if adjoint else ""
            out.write(f"{pad}{kind}{simd} {namer.name(op.body.args[0])} in "
                      f"[{n(op.operands[0])}, {n(op.operands[1])}) "
                      f"step {n(op.operands[2])}{tag} {{\n")
            _print_block(op.regions[0], out, namer, indent + 1)
            out.write(f"{pad}}}\n")
        elif oc == "parallel_for":
            out.write(f"{pad}parallel_for {namer.name(op.body.args[0])} in "
                      f"[{n(op.operands[0])}, {n(op.operands[1])})"
                      f"{_fmt_attrs(op)} {{\n")
            _print_block(op.regions[0], out, namer, indent + 1)
            out.write(f"{pad}}}\n")
        elif oc == "fork":
            body = op.regions[0]
            out.write(f"{pad}fork({n(op.operands[0])}) "
                      f"({namer.name(body.args[0])}, {namer.name(body.args[1])})"
                      f" {{\n")
            _print_block(body, out, namer, indent + 1)
            out.write(f"{pad}}}\n")
        elif oc == "if":
            out.write(f"{pad}if {n(op.operands[0])} {{\n")
            _print_block(op.regions[0], out, namer, indent + 1)
            if op.regions[1].ops:
                out.write(f"{pad}}} else {{\n")
                _print_block(op.regions[1], out, namer, indent + 1)
            out.write(f"{pad}}}\n")
        elif oc == "while":
            out.write(f"{pad}while {namer.name(op.body.args[0])} {{\n")
            _print_block(op.regions[0], out, namer, indent + 1)
            out.write(f"{pad}}}\n")
        elif oc == "condition":
            out.write(f"{pad}continue_if {n(op.operands[0])}\n")
        elif oc == "spawn":
            out.write(f"{pad}{n(op.result)} = spawn {{\n")
            _print_block(op.regions[0], out, namer, indent + 1)
            out.write(f"{pad}}}\n")
        elif oc == "cmp":
            out.write(f"{pad}{n(op.result)} = cmp.{op.attrs['pred']} "
                      f"{n(op.operands[0])}, {n(op.operands[1])}\n")
        else:
            res = f"{n(op.result)} = " if op.result else ""
            args = ", ".join(n(v) for v in op.operands)
            out.write(f"{pad}{res}{oc} {args}{_fmt_attrs(op)}\n")
