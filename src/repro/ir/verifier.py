"""IR verifier.

Checks the structural invariants the rest of the stack relies on:

* SSA def-before-use with lexical dominance (a use sees definitions made
  earlier in its own block or in any enclosing block),
* placement rules for structured ops (workshare/barrier inside fork,
  ``condition`` terminating while bodies, ``return`` at function top
  level only),
* callee existence and arity,
* pointer-typed operands where memory ops require them,
* request hygiene: a ``request``-typed value may only flow into a call
  argument declared ``request`` (wait/test and the mpid adjoint
  helpers), request-array stores, cache pushes, or a ``request``
  return — and, conversely, a declared ``request`` argument must
  receive one.

The verifier raises :class:`VerificationError` with a path to the
offending op.
"""

from __future__ import annotations

from .function import Function, Module
from .ops import Block, Op
from .types import I64, PointerType
from .values import Argument, BlockArg, Constant, Result, Value


class VerificationError(Exception):
    pass


class _Scope:
    """A stack of visible-value frames (one per nested region)."""

    def __init__(self) -> None:
        self.frames: list[set[Value]] = []

    def push(self, values=()) -> None:
        self.frames.append(set(values))

    def pop(self) -> None:
        self.frames.pop()

    def define(self, v: Value) -> None:
        self.frames[-1].add(v)

    def visible(self, v: Value) -> bool:
        return any(v in frame for frame in self.frames)


def verify_module(module: Module) -> None:
    for fn in module.functions.values():
        verify_function(fn, module)


def verify_function(fn: Function, module: Module) -> None:
    scope = _Scope()
    scope.push(fn.args)
    _verify_block(fn.body, scope, fn, module, context=())
    ops = fn.body.ops
    for i, op in enumerate(ops):
        if op.opcode == "return" and i != len(ops) - 1:
            raise VerificationError(
                f"{fn.name}: return must be the last op of the function body")


def _err(fn: Function, op: Op, msg: str) -> VerificationError:
    return VerificationError(f"{fn.name}: {op!r}: {msg}")


def _verify_block(block: Block, scope: _Scope, fn: Function, module: Module,
                  context: tuple[str, ...]) -> None:
    for i, op in enumerate(block.ops):
        # 1. Operand visibility.
        for v in op.operands:
            if isinstance(v, Constant):
                continue
            if not isinstance(v, (Argument, BlockArg, Result)):
                raise _err(fn, op, f"operand {v!r} is not an IR value")
            if not scope.visible(v):
                raise _err(fn, op,
                           f"operand {v!r} does not dominate its use")

        # 2. Placement rules.
        _check_placement(op, i, block, context, fn)

        # 3. Op-specific checks.
        _check_op(op, fn, module)

        # 4. Recurse into regions with an extended scope.
        for region in op.regions:
            scope.push(region.args)
            child_ctx = context + (op.opcode,)
            _verify_block(region, scope, fn, module, child_ctx)
            scope.pop()

        # 5. Results become visible for subsequent ops.
        if op.result is not None:
            scope.define(op.result)


def _check_placement(op: Op, index: int, block: Block,
                     context: tuple[str, ...], fn: Function) -> None:
    oc = op.opcode
    if oc == "return" and context:
        raise _err(fn, op, "return inside a nested region")
    if oc == "condition":
        parent = block.parent_op
        if parent is None or parent.opcode != "while":
            raise _err(fn, op, "condition outside a while body")
        if block.ops[-1] is not op:
            raise _err(fn, op, "condition must terminate the while body")
    if oc == "barrier" and "fork" not in context:
        raise _err(fn, op, "barrier outside a fork region")
    if oc == "for" and op.attrs.get("workshare"):
        if "fork" not in context:
            raise _err(fn, op, "workshare loop outside a fork region")
    if oc == "for" and op.attrs.get("adjoint") is not None:
        from ..ad.strategy import STRATEGY_NAMES
        tag = op.attrs["adjoint"]
        if tag not in STRATEGY_NAMES:
            raise _err(fn, op, f"unknown adjoint strategy {tag!r}; "
                               f"expected one of {STRATEGY_NAMES}")
        if op.attrs.get("workshare") or op.attrs.get("simd"):
            raise _err(fn, op, "adjoint strategy tags apply only to "
                               "serial counted loops")
    if oc in ("parallel_for", "fork"):
        # No nested thread parallelism inside parallel regions (the
        # paper's runtimes do not nest either); spawn regions may not
        # contain forks.
        if "parallel_for" in context or "fork" in context:
            raise _err(fn, op, f"nested {oc} inside a parallel region")
    if context and context[-1] == "parallel_for":
        pass
    if "parallel_for" in context or ("for" in context and oc == "barrier"):
        if oc == "barrier" and "parallel_for" in context:
            raise _err(fn, op, "barrier inside parallel_for body")


#: Opcodes through which a request-typed value may legally flow (the
#: pointer/index/element rules above constrain the exact positions).
_REQUEST_SINKS = frozenset({"call", "store", "cache_push", "return"})


def _check_request_flow(op: Op, fn: Function, module: Module) -> None:
    from .types import Request
    oc = op.opcode
    if oc == "call":
        try:
            target = module.lookup_callee(op.attrs["callee"])
        except KeyError:
            return      # reported by the arity/existence check
        from .function import IntrinsicInfo
        if isinstance(target, IntrinsicInfo):
            decl = list(target.arg_types)
            variadic = target.variadic
        else:
            decl = [a.type for a in target.args]
            variadic = False
        for i, v in enumerate(op.operands):
            want = decl[i] if i < len(decl) else None
            if v.type is Request:
                if want is not Request and not (variadic and
                                                i >= len(decl)):
                    raise _err(fn, op,
                               f"request-typed operand #{i} passed to "
                               f"{op.attrs['callee']} where {want} is "
                               f"expected")
            elif want is Request:
                raise _err(fn, op,
                           f"operand #{i} of {op.attrs['callee']} must "
                           f"be a request, got {v.type}")
        return
    if not any(v.type is Request for v in op.operands):
        return
    if oc not in _REQUEST_SINKS:
        raise _err(fn, op, f"request-typed value used by {oc!r}; "
                   f"requests may only flow into wait/test calls, "
                   f"request-array stores, cache pushes, or returns")
    if oc == "cache_push" and op.operands[0].type is Request:
        raise _err(fn, op, "cache handle cannot be a request")


def _check_op(op: Op, fn: Function, module: Module) -> None:
    _check_request_flow(op, fn, module)
    oc = op.opcode
    if oc in ("load", "store", "atomic", "ptradd", "memset", "memcpy", "free"):
        ptr_index = {"load": 0, "store": 1, "atomic": 1, "ptradd": 0,
                     "memset": 0, "memcpy": 0, "free": 0}[oc]
        ptr = op.operands[ptr_index]
        if not isinstance(ptr.type, PointerType):
            raise _err(fn, op, f"expected pointer operand, got {ptr.type}")
        if oc == "load" or oc == "store" or oc == "atomic" or oc == "ptradd":
            idx = op.operands[{"load": 1, "store": 2, "atomic": 2,
                               "ptradd": 1}[oc]]
            if idx.type is not I64:
                raise _err(fn, op, f"index must be i64, got {idx.type}")
        if oc == "store":
            val = op.operands[0]
            if val.type is not ptr.type.elem:
                raise _err(fn, op,
                           f"storing {val.type} into {ptr.type}")
        if oc == "memcpy":
            src = op.operands[1]
            if not isinstance(src.type, PointerType):
                raise _err(fn, op, "memcpy source must be a pointer")
            if src.type is not ptr.type:
                raise _err(fn, op, "memcpy element types differ")
    elif oc == "call":
        try:
            target = module.lookup_callee(op.attrs["callee"])
        except KeyError as e:
            raise _err(fn, op, str(e))
        from .function import IntrinsicInfo
        if isinstance(target, IntrinsicInfo):
            if not target.variadic and len(op.operands) != len(target.arg_types):
                raise _err(fn, op,
                           f"{target.name} expects {len(target.arg_types)} "
                           f"args, got {len(op.operands)}")
        else:
            if len(op.operands) != len(target.args):
                raise _err(fn, op,
                           f"{target.name} expects {len(target.args)} args, "
                           f"got {len(op.operands)}")
    elif oc == "return":
        if op.operands:
            if fn.ret_type is None or op.operands[0].type is not fn.ret_type:
                raise _err(fn, op, "return type mismatch")
        else:
            from .types import Void
            if fn.ret_type is not Void:
                raise _err(fn, op, f"missing return value ({fn.ret_type})")
    elif oc == "while":
        body = op.regions[0]
        if not body.ops or body.ops[-1].opcode != "condition":
            raise _err(fn, op, "while body must end with condition")
