"""Textual IR parser: the inverse of :mod:`repro.ir.printer`.

``parse_module(text)`` reconstructs functions from the printed form, so
IR can be stored as golden files, edited by hand in tests, and
round-tripped (``print(parse(print(f)))`` is a fixpoint).
"""

from __future__ import annotations

import re
from typing import Optional

from .function import Function, Module
from .ops import (
    AllocOp,
    AtomicRMWOp,
    BarrierOp,
    Block,
    CacheCreateOp,
    CachePopOp,
    CachePushOp,
    CallOp,
    ComputeOp,
    ConditionOp,
    ForOp,
    ForkOp,
    FreeOp,
    IfOp,
    LoadOp,
    MemcpyOp,
    MemsetOp,
    ParallelForOp,
    PtrAddOp,
    ReturnOp,
    SpawnOp,
    StoreOp,
    WhileOp,
)
from .opinfo import OP_INFO
from .types import (
    F64,
    I1,
    I64,
    PointerType,
    Ptr,
    Request,
    Task,
    Token,
    Type,
    Void,
)
from .values import Constant, Value


class ParseError(Exception):
    pass


_TYPES = {"f64": F64, "i64": I64, "i1": I1, "void": Void,
          "task": Task, "request": Request, "token": Token}


def parse_type(text: str) -> Type:
    text = text.strip()
    if text.startswith("ptr<") and text.endswith(">"):
        return Ptr(parse_type(text[4:-1]))
    try:
        return _TYPES[text]
    except KeyError:
        raise ParseError(f"unknown type {text!r}") from None


def _parse_const(tok: str):
    if tok == "True":
        return Constant(True)
    if tok == "False":
        return Constant(False)
    try:
        return Constant(int(tok))
    except ValueError:
        pass
    try:
        return Constant(float(tok))
    except ValueError:
        raise ParseError(f"not a value or constant: {tok!r}") from None


def _parse_attrs(text: str) -> dict:
    """Parse ``{k=v, ...}`` with python-literal values."""
    out: dict = {}
    body = text.strip()
    if not body:
        return out
    body = body.strip("{}")
    for item in _split_top(body, ","):
        if not item.strip():
            continue
        k, _, v = item.partition("=")
        out[k.strip()] = _literal(v.strip())
    return out


def _literal(v: str):
    if v in ("True", "False"):
        return v == "True"
    if (v.startswith("'") and v.endswith("'")) or \
            (v.startswith('"') and v.endswith('"')):
        return v[1:-1]
    try:
        return int(v)
    except ValueError:
        pass
    try:
        return float(v)
    except ValueError:
        return v


def _split_top(text: str, sep: str) -> list[str]:
    parts, depth, cur = [], 0, []
    for ch in text:
        if ch in "(<[{":
            depth += 1
        elif ch in ")>]}":
            depth -= 1
        if ch == sep and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    parts.append("".join(cur))
    return parts


class _Parser:
    def __init__(self, text: str, module: Optional[Module] = None) -> None:
        self.lines = [ln.rstrip() for ln in text.splitlines()]
        self.pos = 0
        self.module = module if module is not None else Module()
        self.env: dict[str, Value] = {}

    # -- line plumbing ---------------------------------------------------
    def _peek(self) -> Optional[str]:
        while self.pos < len(self.lines):
            ln = self.lines[self.pos].strip()
            if ln:
                return ln
            self.pos += 1
        return None

    def _next(self) -> str:
        ln = self._peek()
        if ln is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return ln

    # -- values -----------------------------------------------------------
    def _val(self, tok: str) -> Value:
        tok = tok.strip()
        if tok.startswith("%"):
            try:
                return self.env[tok]
            except KeyError:
                raise ParseError(f"undefined value {tok}") from None
        return _parse_const(tok)

    def _vals(self, text: str) -> list[Value]:
        text = text.strip()
        if not text:
            return []
        return [self._val(t) for t in _split_top(text, ",")]

    def _define(self, name: str, value: Value) -> None:
        self.env[name] = value

    # -- top level ----------------------------------------------------------
    def parse_module(self) -> Module:
        while self._peek() is not None:
            self.parse_function()
        return self.module

    def parse_function(self) -> Function:
        header = self._next()
        m = re.match(r"func @([\w.]+)\((.*)\) -> (\S+) \{$", header)
        if not m:
            raise ParseError(f"bad function header: {header!r}")
        name, argtext, ret = m.groups()
        args, attrs = [], []
        if argtext.strip():
            for part in _split_top(argtext, ","):
                part = part.strip()
                am = re.match(r"%(\S+): (\S+)((?: \w+(?:=-?\d+)?)*)$", part)
                if not am:
                    raise ParseError(f"bad argument: {part!r}")
                aname, atype, aattrs = am.groups()
                args.append((aname, parse_type(atype)))
                aa: dict = {}
                for tok in aattrs.split():
                    if "=" in tok:
                        k, v = tok.split("=", 1)
                        aa[k] = int(v)
                    else:
                        aa[tok] = True
                attrs.append(aa)
        fn = Function(name, args, parse_type(ret), attrs)
        self.module.add_function(fn)
        self.env = {f"%{a.name}": a for a in fn.args}
        self._parse_block_into(fn.body)
        return fn

    # -- blocks -------------------------------------------------------------
    def _parse_block_into(self, block: Block) -> None:
        while True:
            ln = self._next()
            if ln == "}":
                return
            op_or_none = self._parse_op(ln, block)
            if op_or_none == "ELSE":
                # handled inside _parse_op for if; never reaches here
                raise ParseError("stray else")

    def _parse_op(self, ln: str, block: Block):
        # result-producing generic forms
        m = re.match(r"(%\S+) = (.*)$", ln)
        if m:
            res_name, rest = m.groups()
            op = self._parse_rhs(rest, block)
            if op.result is None:
                raise ParseError(f"op has no result: {ln!r}")
            self._define(res_name, op.result)
            return op
        return self._parse_stmt(ln, block)

    # -- result-producing ops -------------------------------------------
    def _parse_rhs(self, rest: str, block: Block):
        m = re.match(r"load (\S+)\[(.+)\] : \S+$", rest)
        if m:
            op = LoadOp(self._val(m.group(1)), self._val(m.group(2)))
            block.append(op)
            return op
        m = re.match(r"alloc (\S+) x (\S+) space=(\w+)$", rest)
        if m:
            op = AllocOp(self._val(m.group(1)), parse_type(m.group(2)),
                         m.group(3))
            block.append(op)
            return op
        m = re.match(r"call @([\w.]+)\((.*)\)(\s*\{.*\})?$", rest)
        if m:
            callee, argtext, attrs = m.groups()
            target = self.module.lookup_callee(callee)
            op = CallOp(callee, self._vals(argtext), target.ret_type,
                        _parse_attrs(attrs or ""))
            block.append(op)
            return op
        m = re.match(r"cmp\.(\w+) (.+)$", rest)
        if m:
            pred, ops = m.groups()
            vals = self._vals(ops)
            op = ComputeOp("cmp", vals, attrs={"pred": pred})
            block.append(op)
            return op
        m = re.match(r"ptradd (.+)$", rest)
        if m:
            vals = self._vals(m.group(1))
            op = PtrAddOp(vals[0], vals[1])
            block.append(op)
            return op
        m = re.match(r"spawn \{$", rest)
        if m:
            op = SpawnOp()
            block.append(op)
            self._parse_block_into(op.body)
            return op
        m = re.match(r"cache_create\s*$", rest)
        if m:
            op = CacheCreateOp()
            block.append(op)
            return op
        m = re.match(r"cache_pop (\S+)$", rest)
        if m:
            # element type is not printed; default to f64 pointers
            op = CachePopOp(self._val(m.group(1)), Ptr(F64))
            block.append(op)
            return op
        # generic compute op: "<opcode> a, b {attrs}"
        m = re.match(r"(\w+) (.+?)(\s*\{.*\})?$", rest)
        if m:
            oc, ops, attrs = m.groups()
            if oc in OP_INFO:
                op = ComputeOp(oc, self._vals(ops),
                               _parse_attrs(attrs or ""))
                block.append(op)
                return op
        raise ParseError(f"cannot parse rhs: {rest!r}")

    # -- statements -------------------------------------------------------
    def _parse_stmt(self, ln: str, block: Block):
        m = re.match(r"store (.+), (\S+)\[(.+)\]$", ln)
        if m:
            val, ptr, idx = m.groups()
            op = StoreOp(self._coerced(val, ptr), self._val(ptr),
                         self._val(idx))
            block.append(op)
            return op
        m = re.match(r"atomic_(\w+) (.+), (\S+)\[(.+)\](\s*\{.*\})?$", ln)
        if m:
            kind, val, ptr, idx, attrs = m.groups()
            op = AtomicRMWOp(kind, self._val(val), self._val(ptr),
                             self._val(idx))
            op.attrs.update(_parse_attrs(attrs or ""))
            block.append(op)
            return op
        m = re.match(r"call @([\w.]+)\((.*)\)(\s*\{.*\})?$", ln)
        if m:
            callee, argtext, attrs = m.groups()
            target = self.module.lookup_callee(callee)
            op = CallOp(callee, self._vals(argtext), target.ret_type,
                        _parse_attrs(attrs or ""))
            block.append(op)
            return op
        if ln == "return":
            op = ReturnOp([])
            block.append(op)
            return op
        m = re.match(r"return (.+)$", ln)
        if m:
            op = ReturnOp(self._vals(m.group(1)))
            block.append(op)
            return op
        m = re.match(r"continue_if (.+)$", ln)
        if m:
            op = ConditionOp(self._val(m.group(1)))
            block.append(op)
            return op
        if ln == "barrier":
            op = BarrierOp()
            block.append(op)
            return op
        m = re.match(r"free (\S+)$", ln)
        if m:
            op = FreeOp(self._val(m.group(1)))
            block.append(op)
            return op
        m = re.match(r"memset (.+)$", ln)
        if m:
            v = self._vals(m.group(1))
            op = MemsetOp(v[0], v[1], v[2])
            block.append(op)
            return op
        m = re.match(r"memcpy (.+)$", ln)
        if m:
            v = self._vals(m.group(1))
            op = MemcpyOp(v[0], v[1], v[2])
            block.append(op)
            return op
        m = re.match(r"cache_push (.+)$", ln)
        if m:
            v = self._vals(m.group(1))
            op = CachePushOp(v[0], v[1])
            block.append(op)
            return op
        m = re.match(
            r"(for|workshare_for)( simd)?( reversed)? (%\S+) in "
            r"\[(.+), (.+)\) step (\S+)(\s*\{[^{]*\})? \{$", ln)
        if m:
            kind, simd, _rev, iv, lb, ub, step, attrs = m.groups()
            op = ForOp(self._val(lb), self._val(ub), self._val(step),
                       workshare=(kind == "workshare_for"),
                       simd=bool(simd), ivar_name=iv.lstrip("%"))
            op.attrs.update(_parse_attrs((attrs or "").strip()))
            block.append(op)
            self._define(iv, op.ivar)
            self._parse_block_into(op.body)
            return op
        m = re.match(r"parallel_for (%\S+) in \[(.+), (.+)\)"
                     r"(\s*\{[^{]*\})? \{$", ln)
        if m:
            iv, lb, ub, attrs = m.groups()
            a = _parse_attrs((attrs or "").strip())
            op = ParallelForOp(self._val(lb), self._val(ub),
                               framework=a.get("framework", "openmp"),
                               ivar_name=iv.lstrip("%"),
                               schedule=a.get("schedule", "static"))
            block.append(op)
            self._define(iv, op.ivar)
            self._parse_block_into(op.body)
            return op
        m = re.match(r"fork\((.+)\) \((%\S+), (%\S+)\) \{$", ln)
        if m:
            nt, tid, nth = m.groups()
            op = ForkOp(self._val(nt))
            block.append(op)
            self._define(tid, op.tid)
            self._define(nth, op.nthreads)
            self._parse_block_into(op.body)
            return op
        m = re.match(r"if (\S+) \{$", ln)
        if m:
            op = IfOp(self._val(m.group(1)))
            block.append(op)
            self._parse_if_regions(op)
            return op
        m = re.match(r"while (%\S+) \{$", ln)
        if m:
            op = WhileOp(ivar_name=m.group(1).lstrip("%"))
            block.append(op)
            self._define(m.group(1), op.ivar)
            self._parse_block_into(op.body)
            return op
        raise ParseError(f"cannot parse statement: {ln!r}")

    def _parse_if_regions(self, op: IfOp) -> None:
        # then-body runs until "}" or "} else {"
        while True:
            ln = self._next()
            if ln == "}":
                return
            if ln == "} else {":
                self._parse_block_into(op.else_body)
                return
            self._parse_op(ln, op.then_body)

    def _coerced(self, val_tok: str, ptr_tok: str) -> Value:
        """Coerce a constant to the pointee type (e.g. `store 0.0`
        into an i64 buffer prints ambiguously)."""
        v = self._val(val_tok)
        p = self._val(ptr_tok)
        if isinstance(v, Constant) and isinstance(p.type, PointerType):
            want = p.type.elem
            if v.type is not want and want in (F64, I64, I1):
                return Constant(v.value, want)
        return v


def parse_module(text: str, module: Optional[Module] = None) -> Module:
    return _Parser(text, module).parse_module()


def parse_function(text: str, module: Optional[Module] = None) -> Function:
    p = _Parser(text, module)
    fn = p.parse_function()
    return fn
