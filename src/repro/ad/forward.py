"""Forward-mode AD (paper §III).

Enzyme "uses reverse mode by default" — but forward mode (tangent
propagation) is part of the framework and is the efficient choice for
few-inputs/many-outputs seeding.  Forward mode is also the easy case of
the paper's parallel model: tangents propagate *in program order*, so
every parallel construct keeps its own shape — a parallel loop's
tangent is computed inside the same parallel loop, a send's tangent is
a second send of the shadow buffer ("twice the number of MPI calls",
§IV-B), and no caching is ever required.

``autodiff_forward(module, fn, activities)`` generates
``fwddiffe_<fn>`` with the same Duplicated calling convention as
reverse mode: shadow inputs carry tangents in, shadow outputs carry
tangents out.
"""

from __future__ import annotations

from typing import Optional

from ..ir.builder import IRBuilder
from ..ir.function import Function, Module
from ..ir.opinfo import OP_INFO
from ..ir.ops import (
    AllocOp,
    AtomicRMWOp,
    Block,
    CallOp,
    ComputeOp,
    ForOp,
    ForkOp,
    IfOp,
    LoadOp,
    MemcpyOp,
    MemsetOp,
    Op,
    ParallelForOp,
    PtrAddOp,
    SpawnOp,
    StoreOp,
    WhileOp,
)
from ..ir.types import F64, I64, PointerType, Request, Task, Token, Void
from ..ir.values import Argument, Constant, Value
from ..passes.inline import force_inline_all
from .transform import ADConfig, ADTransformError, Const, Duplicated

#: Offset added to MPI tags of tangent messages so primal and tangent
#: streams never cross-match.
TANGENT_TAG_OFFSET = 1 << 20


def autodiff_forward(module: Module, fn_name: str, activities: list,
                     config: Optional[ADConfig] = None) -> str:
    return _ForwardTransform(module, fn_name, activities,
                             config or ADConfig()).build()


class _ForwardTransform:
    def __init__(self, module, fn_name, activities, config) -> None:
        self.module = module
        self.src_name = fn_name
        self.activities = [a if a is not None else Const
                           for a in activities]
        self.config = config
        self.grad_name = "fwddiffe_" + fn_name
        self.pm: dict[Value, Value] = {}
        self.tm: dict[Value, Value] = {}   # float value -> tangent
        self.sm: dict[Value, Value] = {}   # pointer/handle -> shadow

    # ------------------------------------------------------------------
    def build(self) -> str:
        if self.grad_name in self.module.functions:
            return self.grad_name
        work = f"__fwd_work_{self.src_name}"
        self.fn = self.module.clone_function(self.src_name, work)
        force_inline_all(self.fn, self.module)
        if self.config.opt_level != "none":
            from ..passes.pass_manager import default_pipeline
            default_pipeline().run_function(self.fn, self.module)

        if len(self.activities) != len(self.fn.args):
            raise ADTransformError("activity count mismatch")

        args, attrs = [], []
        for a, kind in zip(self.fn.args, self.activities):
            args.append((a.name, a.type))
            attrs.append(dict(a.attrs))
            if kind == Duplicated:
                if not isinstance(a.type, PointerType):
                    raise ADTransformError(
                        "forward mode supports Duplicated pointer "
                        "arguments")
                args.append(("d_" + a.name, a.type))
                attrs.append(dict(a.attrs))
        self.grad = Function(self.grad_name, args, self.fn.ret_type, attrs)
        self.module.add_function(self.grad)

        gi = iter(self.grad.args)
        for a, kind in zip(self.fn.args, self.activities):
            ga = next(gi)
            self.pm[a] = ga
            if kind == Duplicated:
                self.sm[a] = next(gi)
            elif isinstance(a.type, PointerType):
                self.sm[a] = ga

        self.b = IRBuilder(self.module)
        self.b._fn = self.grad
        self.b._blocks.append(self.grad.body)
        from ..ir.values import pop_builder, push_builder
        push_builder(self.b)
        try:
            self._block(self.fn.body)
            if self.fn.ret_type is Void and (
                    not self.grad.body.ops
                    or self.grad.body.ops[-1].opcode != "return"):
                from ..ir.ops import ReturnOp
                self.grad.body.append(ReturnOp([]))
        finally:
            pop_builder(self.b)
            self.b._blocks.pop()
        del self.module.functions[work]
        if self.config.verify:
            from ..ir.verifier import verify_function
            verify_function(self.grad, self.module)
        return self.grad_name

    # ------------------------------------------------------------------
    def _v(self, x: Value) -> Value:
        if isinstance(x, Constant):
            return x
        return self.pm[x]

    def _t(self, x: Value) -> Value:
        """Tangent of a float value (0 for constants/inactive)."""
        if isinstance(x, Constant):
            return Constant(0.0, F64)
        return self.tm.get(x, Constant(0.0, F64))

    def _s(self, p: Value) -> Value:
        out = self.sm.get(p)
        if out is None:
            raise ADTransformError(f"no shadow for pointer {p!r}")
        return out

    # ------------------------------------------------------------------
    def _block(self, block: Block) -> None:
        b = self.b
        for op in block.ops:
            oc = op.opcode
            if oc in OP_INFO:
                new = ComputeOp(oc, [self._v(v) for v in op.operands],
                                dict(op.attrs))
                b.emit(new)
                self.pm[op.result] = new.result
                self._emit_tangent(op, new)
            elif oc == "alloc":
                new = AllocOp(self._v(op.operands[0]),
                              op.result.type.elem, op.attrs["space"],
                              name=op.result.name)
                b.emit(new)
                self.pm[op.result] = new.result
                tw = AllocOp(self._v(op.operands[0]), op.result.type.elem,
                             op.attrs["space"],
                             name="d_" + (op.result.name or "buf"))
                b.emit(tw)
                self.sm[op.result] = tw.result
            elif oc == "ptradd":
                new = PtrAddOp(self._v(op.operands[0]),
                               self._v(op.operands[1]))
                b.emit(new)
                self.pm[op.result] = new.result
                tw = PtrAddOp(self._s(op.operands[0]),
                              self._v(op.operands[1]))
                b.emit(tw)
                self.sm[op.result] = tw.result
            elif oc == "load":
                new = LoadOp(self._v(op.operands[0]),
                             self._v(op.operands[1]))
                b.emit(new)
                self.pm[op.result] = new.result
                elem = op.result.type
                tw = LoadOp(self._s(op.operands[0]),
                            self._v(op.operands[1]))
                b.emit(tw)
                if elem is F64:
                    self.tm[op.result] = tw.result
                else:
                    self.sm[op.result] = tw.result
            elif oc == "store":
                val = op.operands[0]
                b.emit(StoreOp(self._v(val), self._v(op.operands[1]),
                               self._v(op.operands[2])))
                if val.type is F64:
                    b.emit(StoreOp(self._coerce_t(val),
                                   self._s(op.operands[1]),
                                   self._v(op.operands[2])))
                elif isinstance(val.type, PointerType) or \
                        val.type in (Request, Task):
                    b.emit(StoreOp(self._s(val), self._s(op.operands[1]),
                                   self._v(op.operands[2])))
            elif oc == "atomic":
                b.emit(AtomicRMWOp(op.attrs["kind"],
                                   self._v(op.operands[0]),
                                   self._v(op.operands[1]),
                                   self._v(op.operands[2])))
                if op.attrs["kind"] == "add":
                    b.emit(AtomicRMWOp("add", self._coerce_t(op.operands[0]),
                                       self._s(op.operands[1]),
                                       self._v(op.operands[2])))
                else:
                    raise ADTransformError(
                        "forward mode: atomic min/max unsupported")
            elif oc == "memset":
                b.emit(MemsetOp(self._v(op.operands[0]),
                                self._v(op.operands[1]),
                                self._v(op.operands[2])))
                b.emit(MemsetOp(self._s(op.operands[0]),
                                Constant(0.0, F64),
                                self._v(op.operands[2])))
            elif oc == "memcpy":
                b.emit(MemcpyOp(self._v(op.operands[0]),
                                self._v(op.operands[1]),
                                self._v(op.operands[2])))
                b.emit(MemcpyOp(self._s(op.operands[0]),
                                self._s(op.operands[1]),
                                self._v(op.operands[2])))
            elif oc == "free":
                from ..ir.ops import FreeOp
                b.emit(FreeOp(self._v(op.operands[0])))
                b.emit(FreeOp(self._s(op.operands[0])))
            elif oc == "return":
                from ..ir.ops import ReturnOp
                b.emit(ReturnOp([self._v(v) for v in op.operands]))
            elif oc == "condition":
                from ..ir.ops import ConditionOp
                b.emit(ConditionOp(self._v(op.operands[0])))
            elif oc == "barrier":
                b.barrier()
            elif oc in ("for", "while", "parallel_for", "fork", "if",
                        "spawn"):
                self._region(op)
            elif oc == "call":
                self._call(op)
            else:
                raise ADTransformError(f"forward mode: unhandled {op!r}")

    def _coerce_t(self, v: Value) -> Value:
        t = self._t(v)
        return t

    def _emit_tangent(self, op: Op, new: Op) -> None:
        if op.result is None or op.result.type is not F64:
            return
        from .rules import RULES, ZERO_DERIVATIVE
        if op.opcode in ZERO_DERIVATIVE:
            return
        rule = RULES.get(op.opcode)
        if rule is None:
            return
        b = self.b

        def active(i: int) -> bool:
            o = op.operands[i]
            return o.type is F64 and not isinstance(o, Constant)

        # availability: primal values are in scope (same pass)
        def av(v: Value) -> Value:
            return self._v(v)

        total: Optional[Value] = None
        # Reuse the reverse rules with adj := tangent of each operand:
        # tangent(result) = sum_i (d result / d operand_i) * tangent_i.
        # rule.emit(adj=1 * tangent_i) gives exactly those products.
        for i, contrib in _jvp_contribs(rule, b, op, av, active, self._t):
            total = contrib if total is None else b.add(total, contrib)
        if total is not None:
            self.tm[op.result] = total

    # ------------------------------------------------------------------
    def _region(self, op: Op) -> None:
        b = self.b
        oc = op.opcode
        if oc == "for":
            new = ForOp(self._v(op.operands[0]), self._v(op.operands[1]),
                        self._v(op.operands[2]),
                        workshare=op.attrs.get("workshare", False),
                        simd=op.attrs.get("simd", False),
                        nowait=op.attrs.get("nowait", False),
                        ivar_name=op.body.args[0].name)
        elif oc == "while":
            new = WhileOp(ivar_name=op.body.args[0].name)
        elif oc == "parallel_for":
            new = ParallelForOp(self._v(op.operands[0]),
                                self._v(op.operands[1]),
                                framework=op.attrs.get("framework",
                                                       "openmp"))
        elif oc == "fork":
            new = ForkOp(self._v(op.operands[0]),
                         framework=op.attrs.get("framework", "openmp"))
        elif oc == "if":
            new = IfOp(self._v(op.operands[0]))
            b.emit(new)
            with b.at(new.then_body):
                self._block(op.then_body)
            with b.at(new.else_body):
                self._block(op.else_body)
            return
        elif oc == "spawn":
            new = SpawnOp(framework=op.attrs.get("framework", "julia"))
            b.emit(new)
            self.pm[op.result] = new.result
            self.sm[op.result] = new.result  # single task carries both
            with b.at(new.body):
                self._block(op.body)
            return
        else:  # pragma: no cover
            raise ADTransformError(oc)
        b.emit(new)
        for old_arg, new_arg in zip(op.body.args, new.body.args):
            self.pm[old_arg] = new_arg
        with b.at(new.regions[0]):
            self._block(op.regions[0])

    # ------------------------------------------------------------------
    def _call(self, op: CallOp) -> None:
        b = self.b
        callee = op.attrs["callee"]
        args = [self._v(v) for v in op.operands]

        def clone(result_shadow: Optional[str] = None):
            new = CallOp(callee, args,
                         op.result.type if op.result else Void,
                         dict(op.attrs))
            b.emit(new)
            if op.result is not None:
                self.pm[op.result] = new.result
            return new

        if callee in ("mpi.comm_rank", "mpi.comm_size", "rt.num_threads",
                      "rt.assert_ge", "mpi.barrier", "jl.safepoint"):
            clone()
            return
        if callee == "jl.arrayptr":
            new = clone()
            tw = CallOp(callee, [self._s(op.operands[0])], op.result.type)
            b.emit(tw)
            self.sm[op.result] = tw.result
            return
        if callee == "jl.gc_preserve_begin":
            ptrs = list(args)
            for v in op.operands:
                s = self.sm.get(v)
                if s is not None and s not in ptrs:
                    ptrs.append(s)
            new = CallOp(callee, ptrs, Token)
            b.emit(new)
            self.pm[op.result] = new.result
            return
        if callee == "jl.gc_preserve_end":
            clone()
            return
        if callee == "task.wait":
            clone()
            return
        if callee in ("mpi.send", "mpi.recv", "mpi.isend", "mpi.irecv"):
            new = clone()
            shadow_args = [self._s(op.operands[0]), args[1], args[2],
                           b.add(args[3], TANGENT_TAG_OFFSET)]
            tw = CallOp(callee, shadow_args,
                        op.result.type if op.result else Void)
            b.emit(tw)
            if op.result is not None:
                self.sm[op.result] = tw.result
            return
        if callee == "mpi.wait":
            clone()
            b.emit(CallOp("mpi.wait", [self._s(op.operands[0])], Void))
            return
        if callee == "mpi.allreduce":
            if op.attrs.get("op", "sum") != "sum":
                raise ADTransformError(
                    "forward mode: only sum allreduce has a tangent rule")
            clone()
            b.emit(CallOp("mpi.allreduce",
                          [self._s(op.operands[0]),
                           self._s(op.operands[1]), args[2]],
                          Void, {"op": "sum"}))
            return
        if callee in ("mpi.bcast",):
            clone()
            b.emit(CallOp("mpi.bcast",
                          [self._s(op.operands[0]), args[1], args[2]],
                          Void))
            return
        raise ADTransformError(f"forward mode: no rule for {callee!r}")


def _jvp_contribs(rule, b, op, av, active, tangent_of):
    """Products (d result/d operand_i) * tangent_i via the reverse rules
    evaluated with adj = tangent_i per operand."""
    out = []
    for i, v in enumerate(op.operands):
        if not active(i):
            continue
        t = tangent_of(v)
        if isinstance(t, Constant) and t.value == 0.0:
            continue
        only_i = (lambda j, i=i: j == i)
        for j, contrib in rule.emit(b, op, t, av, only_i):
            assert j == i
            out.append((i, contrib))
    return out
