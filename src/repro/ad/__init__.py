"""repro.ad — the Enzyme-style reverse-mode AD engine (the paper's
primary contribution).

An IR-to-IR transformation generating gradients of programs that use
parallel loops, fork/barrier regions, task spawn/wait, and MPI message
passing, with:

* activity analysis (:mod:`repro.ad.activity`),
* thread-locality / access-pattern analysis choosing serial, reduction,
  or atomic shadow accumulation (:mod:`repro.ad.tls`),
* min-cut recompute-vs-cache planning with the paper's three cache
  allocation strategies (:mod:`repro.ad.cacheplan`),
* per-opcode adjoint rules (:mod:`repro.ad.rules`),
* parallel-construct and shadow-request MPI handlers
  (:mod:`repro.ad.transform`, :mod:`repro.ad.mpi_rules`).
"""

from .api import (Active, ADConfig, Const, Duplicated, autodiff,
                  autodiff_transform)
from .cacheplan import CachePlan, CachePlanner, PlanError
from .forward import autodiff_forward
from .strategy import (AdjointPlan, AdjointStrategy, CacheAllAdjoint,
                       CheckpointAdjoint, ImplicitAdjoint, resolve_strategy)
from .transform import ADTransform, ADTransformError

__all__ = [
    "Active", "ADConfig", "Const", "Duplicated", "autodiff",
    "autodiff_transform", "autodiff_forward",
    "CachePlan", "CachePlanner", "PlanError",
    "AdjointPlan", "AdjointStrategy", "CacheAllAdjoint",
    "CheckpointAdjoint", "ImplicitAdjoint", "resolve_strategy",
    "ADTransform", "ADTransformError",
]
