"""Thread-locality and access-pattern analysis (paper §VI-A1).

When the reverse pass increments a shadow location, Enzyme chooses the
cheapest correct mechanism:

* **serial** load-add-store when the location is provably private to
  the executing thread / iteration — because the shadow's buffer was
  allocated inside the parallel region, or because the access index is
  affine in the parallel induction variable with nonzero stride
  (iteration-disjoint);
* a registered **reduction** when the location is the same for every
  iteration of the parallel loop (loop-uniform) and a reduction for the
  element type exists in the catalog;
* an **atomic** add otherwise.

Falling back to "always atomic" is legal but slow — that is exactly the
``atomic_everywhere`` ablation knob in :class:`repro.ad.api.ADConfig`.

Note that only *load* adjoints need this analysis: the adjoint of a
store touches exactly the locations the primal stored, so a race-free
primal implies a race-free store adjoint.
"""

from __future__ import annotations

from typing import Optional

from ..ir.ops import Op
from ..ir.values import BlockArg, Constant, Result, Value
from ..passes.aliasing import AliasInfo

SERIAL = "serial"
ATOMIC = "atomic"
REDUCTION = "reduction"


class ReductionCatalog:
    """Registered cross-thread reductions (§VI-A1).

    Frameworks may register reductions for (element kind, combiner).
    The default catalog supports f64 sum — the combiner every shadow
    accumulation needs.
    """

    def __init__(self) -> None:
        self._entries: set[tuple[str, str]] = {("f64", "add")}

    def register(self, elem: str, combiner: str) -> None:
        self._entries.add((elem, combiner))

    def supports(self, elem: str, combiner: str) -> bool:
        return (elem, combiner) in self._entries


DEFAULT_REDUCTIONS = ReductionCatalog()


def _index_form(v: Value, par_ivars: set[Value],
                depth: int = 0) -> Optional[dict]:
    """Describe integer expression ``v`` as strides over parallel ivars.

    Returns ``{ivar: stride, ..., "_inner": bool}`` or None for unknown.
    """
    if depth > 24:
        return None
    if isinstance(v, Constant):
        return {"_inner": False}
    if v in par_ivars:
        return {v: 1, "_inner": False}
    if isinstance(v, BlockArg):
        owner = v.owner
        if owner is not None and owner.opcode in ("for", "while"):
            # A serial induction variable: uniform across parallel
            # iterations at each serial step, but varying per step.
            return {"_inner": True}
        if owner is not None and owner.opcode == "fork" and v.index == 1:
            return {"_inner": False}  # nthreads is uniform
        return None
    if isinstance(v, Result):
        op = v.op
        oc = op.opcode
        if oc == "iadd" or oc == "isub":
            a = _index_form(op.operands[0], par_ivars, depth + 1)
            b = _index_form(op.operands[1], par_ivars, depth + 1)
            if a is None or b is None:
                return None
            out = {"_inner": a["_inner"] or b["_inner"]}
            sign = 1 if oc == "iadd" else -1
            for k in set(a) | set(b):
                if k == "_inner":
                    continue
                out[k] = a.get(k, 0) + sign * b.get(k, 0)
            return out
        if oc == "imul":
            a = _index_form(op.operands[0], par_ivars, depth + 1)
            b = _index_form(op.operands[1], par_ivars, depth + 1)
            if a is None or b is None:
                return None
            a_const = isinstance(op.operands[0], Constant)
            b_const = isinstance(op.operands[1], Constant)
            if b_const:
                c = op.operands[1].value
                out = {"_inner": a["_inner"]}
                for k, s in a.items():
                    if k != "_inner":
                        out[k] = s * c
                return out
            if a_const:
                c = op.operands[0].value
                out = {"_inner": b["_inner"]}
                for k, s in b.items():
                    if k != "_inner":
                        out[k] = s * c
                return out
            return None
    # Function arguments and other scalars: uniform.
    from ..ir.values import Argument
    if isinstance(v, Argument):
        return {"_inner": False}
    return None


def classify_index(idx: Value, par_ivars: list[Value]) -> str:
    """Classify an access index relative to the parallel ivars.

    Returns "disjoint" (affine, nonzero stride in exactly one parallel
    ivar, no unknown terms), "uniform" (no dependence on parallel
    ivars), or "unknown".
    """
    form = _index_form(idx, set(par_ivars))
    if form is None:
        return "unknown"
    strides = {k: s for k, s in form.items() if k != "_inner" and s != 0}
    if not strides:
        return "uniform"
    if len(strides) == 1 and not form["_inner"]:
        return "disjoint"
    return "unknown"


def increment_kind(ptr: Value, idx: Value, par_ivars: list[Value],
                   aliasing: AliasInfo,
                   enclosing_parallel: Optional[Op],
                   catalog: ReductionCatalog = DEFAULT_REDUCTIONS,
                   atomic_everywhere: bool = False,
                   mpi_escapes: bool = False) -> str:
    """Choose the shadow-increment mechanism for a load adjoint.

    ``mpi_escapes`` marks locations whose shadow participates in MPI
    communication: the reverse pass of a send is a receive-and-increment
    delivered concurrently with rank-local reverse code (§VI-B), so such
    shadows are contended even *outside* any fork region.  The
    ``atomic_everywhere`` ablation must therefore not downgrade them to
    a serial load-add-store just because ``enclosing_parallel`` is None.
    """
    if atomic_everywhere:
        if enclosing_parallel is not None or mpi_escapes:
            return ATOMIC
        return SERIAL
    if enclosing_parallel is None:
        # Rank-local reverse code is single-threaded here, and the
        # adjoint-MPI helpers accumulate through private temporaries, so
        # serial is provably safe even for MPI-escaping shadows.
        return SERIAL
    # Thread-local allocation?
    alloc = aliasing.points_to_single_alloc(ptr)
    if alloc is not None and _alloc_inside(alloc, enclosing_parallel):
        return SERIAL
    cls = classify_index(idx, par_ivars)
    if cls == "disjoint":
        return SERIAL
    if cls == "uniform" and catalog.supports("f64", "add"):
        return REDUCTION
    return ATOMIC


def _alloc_inside(alloc_op: Op, region_op: Op) -> bool:
    """Is ``alloc_op`` lexically inside ``region_op``'s regions?"""
    blk = alloc_op.parent
    while blk is not None:
        owner = blk.parent_op
        if owner is region_op:
            return True
        blk = owner.parent if owner is not None else None
    return False


def parallel_context(op: Op) -> tuple[Optional[Op], list[Value]]:
    """Find the innermost enclosing parallel construct and the parallel
    induction values (parallel-for ivar, workshare ivar, fork tid)."""
    ivars: list[Value] = []
    region_owner: Optional[Op] = None
    blk = op.parent
    while blk is not None:
        owner = blk.parent_op
        if owner is None:
            break
        if owner.opcode == "parallel_for":
            ivars.append(owner.body.args[0])
            region_owner = region_owner or owner
        elif owner.opcode == "fork":
            ivars.append(owner.body.args[0])  # tid
            region_owner = region_owner or owner
        elif owner.opcode == "for" and owner.attrs.get("workshare"):
            ivars.append(owner.body.args[0])
            # the fork op further out will also be seen
        elif owner.opcode == "spawn":
            region_owner = region_owner or owner
        blk = owner.parent
    return region_owner, ivars
