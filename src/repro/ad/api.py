"""Public AD API.

``autodiff(module, fn, activities)`` generates a reverse-mode gradient
function inside the module and returns its name, following Enzyme's
calling convention:

* ``Const`` (or ``None``) — the argument is not differentiated;
* ``Duplicated`` — a pointer argument followed (in the *generated*
  signature) by its shadow pointer; derivative flows accumulate into
  the shadow.  Output shadows act as seeds: initialize them before the
  call (e.g. to 1 for the §VII projection test).
* ``Active`` — an f64 scalar argument whose derivative is returned.

If the primal returns an f64, the gradient function takes a trailing
``seed`` argument (the differential of the return value).
"""

from __future__ import annotations

from typing import Optional

from ..ir.function import Module
from .mpi_rules import register_mpid_intrinsics
from .transform import Active, ADConfig, ADTransform, Const, Duplicated


def autodiff(module: Module, fn_name: str, activities: list,
             config: Optional[ADConfig] = None) -> str:
    """Generate (or reuse) the gradient of ``fn_name``; returns its name."""
    return autodiff_transform(module, fn_name, activities, config).grad_name


def autodiff_transform(module: Module, fn_name: str, activities: list,
                       config: Optional[ADConfig] = None) -> ADTransform:
    """Like :func:`autodiff` but returns the transform itself, exposing
    the analyses of the run (``adjoint_report``, ``lint_result``,
    ``comm_result``, the cache ``plan``)."""
    register_mpid_intrinsics(module)
    tr = ADTransform(module, fn_name, activities, config)
    tr.build()
    return tr
