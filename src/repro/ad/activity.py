"""Activity analysis.

Decides which float SSA values and which memory origins carry
derivative information.  Inactive values get no adjoints, inactive
buffers get no shadows, and the cache planner never preserves primal
values that only feed inactive computation — the same pruning role
activity analysis plays inside Enzyme (§II mentions how separate
adjoint-MPI libraries interfere with it; here it is integral).

Forward taint fixpoint:
* ``Active``/``Duplicated`` arguments seed the analysis,
* float ops propagate taint operand→result,
* a load from an active origin is active,
* a store of an active value activates the destination's origins,
* ``memcpy`` propagates origin activity,
* MPI communication propagates activity between buffers (a receive
  into a buffer is active whenever any rank sends active data; we
  conservatively treat communicated buffers as active if any
  communicated origin is active).
"""

from __future__ import annotations

from ..ir.function import Function, Module
from ..ir.ops import Op
from ..ir.types import F64, PointerType
from ..ir.values import Argument, Constant, Value
from ..passes.aliasing import UNKNOWN, AliasInfo


class ActivityInfo:
    def __init__(self) -> None:
        self.active_values: set[Value] = set()
        self.active_origins: set = set()
        self.all_origins_active = False

    def value_active(self, v: Value) -> bool:
        return v in self.active_values

    def origin_active(self, origin) -> bool:
        return self.all_origins_active or origin in self.active_origins

    def ptr_active(self, ptr: Value, aliasing: AliasInfo) -> bool:
        p = aliasing.provenance(ptr)
        if UNKNOWN in p:
            return True  # conservative
        return any(self.origin_active(o) for o in p)


#: Float ops that never propagate activity (discrete results).
_DISCRETE = {"cmp", "ftoi", "floor", "itof"}


def analyze_activity(fn: Function, module: Module, aliasing: AliasInfo,
                     duplicated_args: set[Argument],
                     active_scalar_args: set[Argument]) -> ActivityInfo:
    info = ActivityInfo()
    info.active_values |= active_scalar_args
    for a in duplicated_args:
        info.active_origins.add(("arg", a))

    # MPI and other opaque communication can launder activity through
    # memory; treat any function that communicates through an UNKNOWN
    # pointer as fully active.
    for _round in range(16):
        changed = False

        def activate_value(v: Value) -> None:
            nonlocal changed
            if v not in info.active_values:
                info.active_values.add(v)
                changed = True

        def activate_origins(p: frozenset) -> None:
            nonlocal changed
            if UNKNOWN in p:
                if not info.all_origins_active:
                    info.all_origins_active = True
                    changed = True
                return
            for o in p:
                if not info.origin_active(o):
                    info.active_origins.add(o)
                    changed = True

        for op in fn.walk():
            oc = op.opcode
            if oc in _DISCRETE:
                continue
            if oc == "load":
                if op.result.type is F64 and info.ptr_active(
                        op.operands[0], aliasing):
                    activate_value(op.result)
            elif oc == "store":
                val = op.operands[0]
                if val.type is F64 and (val in info.active_values):
                    activate_origins(aliasing.provenance(op.operands[1]))
            elif oc == "atomic":
                if op.operands[0] in info.active_values:
                    activate_origins(aliasing.provenance(op.operands[1]))
            elif oc == "memcpy":
                src_p = aliasing.provenance(op.operands[1])
                if UNKNOWN in src_p or any(info.origin_active(o)
                                           for o in src_p):
                    activate_origins(aliasing.provenance(op.operands[0]))
            elif oc == "memset":
                if op.operands[1] in info.active_values:
                    activate_origins(aliasing.provenance(op.operands[0]))
            elif oc == "call":
                callee = op.attrs["callee"]
                if callee.startswith("mpi."):
                    # Communication: conservatively, any pointer operand
                    # of an MPI call on an active origin activates every
                    # other pointer operand (send->recv pairing happens
                    # across ranks, which this per-rank analysis cannot
                    # see).
                    ptrs = [v for v in op.operands
                            if isinstance(v.type, PointerType)]
                    if any(info.ptr_active(p, aliasing) for p in ptrs):
                        for p in ptrs:
                            activate_origins(aliasing.provenance(p))
                    # MPI moves active data between ranks even when this
                    # rank's sends are inactive; communicated buffers are
                    # treated as active if any duplicated arg exists.
                    if duplicated_args:
                        for p in ptrs:
                            activate_origins(aliasing.provenance(p))
                elif op.result is not None and op.result.type is F64:
                    if any(v in info.active_values for v in op.operands):
                        activate_value(op.result)
            elif op.result is not None and op.result.type is F64:
                if any(v in info.active_values for v in op.operands):
                    activate_value(op.result)
        if not changed:
            break
    return info
