"""Cache-vs-recompute planning (paper §IV-C).

The adjoint of an instruction often needs primal values.  Values defined
at function top level are *free*: the reverse section of the generated
gradient function can still see their forward SSA values (allocation
strategy 1 — "stack variable alive for the whole differentiation").
Values defined inside loops must either be **recomputed** in the reverse
pass from available values, or **cached** during the forward pass:

* in an array indexed by the (linearized) loop iteration when every
  enclosing loop's extent is known at function entry (strategy 2), or
* in a dynamically grown cache (strategy 3) when an enclosing loop has
  a dynamic trip count (``while``) — pushed per forward iteration,
  popped at reverse-iteration entry in mirrored order.

The choice between caching and recomputation is a minimum vertex cut on
the data-dependency graph (the "minimum-cut recompute vs cache
analysis" of [17] cited in §IV-C): sources are values that *cannot* be
recomputed (loads from overwritten memory, communication results, ...),
sinks are the values the reverse pass needs, and cutting a node means
caching it, at a capacity equal to its estimated cache footprint.

Fork regions cache per-thread (indexed by ``tid``); worksharing loops
cache per-iteration, which also makes the reverse robust to a different
thread-to-iteration mapping (paper §VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from ..ir.function import Function, Module
from ..ir.ops import Op
from ..ir.types import F64, I1, I64, PointerType, Request, Task, Type
from ..ir.values import Argument, BlockArg, Constant, Result, Value
from ..passes.aliasing import AliasInfo
from .activity import ActivityInfo
from .rules import RULES, ZERO_DERIVATIVE


class PlanError(Exception):
    pass


class ForkNThreads:
    """Substitution marker: the value is the thread count of a fork
    region; the transform materializes it at depth 0 as
    ``select(num_threads <= 0, rt.num_threads(), num_threads)``."""

    __slots__ = ("fork_op",)

    def __init__(self, fork_op: Op) -> None:
        self.fork_op = fork_op


#: Pure intrinsics whose results may be recomputed in the reverse pass.
_PURE_INTRINSICS = {"mpi.comm_rank", "mpi.comm_size", "rt.num_threads"}

#: Loop-like region ops that constitute cache index dimensions.
_DIM_OPS = ("for", "parallel_for", "while", "fork")


def nest_of(op: Op) -> list[Op]:
    """Enclosing dimension ops, outermost first (spawn/if contribute
    no dimension)."""
    nest: list[Op] = []
    blk = op.parent
    while blk is not None:
        owner = blk.parent_op
        if owner is None:
            break
        if owner.opcode in _DIM_OPS:
            nest.append(owner)
        blk = owner.parent
    nest.reverse()
    return nest


def def_op_of(v: Value) -> Optional[Op]:
    return v.op if isinstance(v, Result) else None


def _directly_in_function_body(op: Op) -> bool:
    return op.parent is not None and op.parent.parent_op is None


def depth_of(v: Value) -> int:
    """0 iff the defining op sits *directly* in the function body —
    only those forward-clone SSA values remain in scope for the reverse
    section.  Values inside any region (including ``if``/``spawn``,
    which add no cache dimension) are not free: their reverse uses live
    in a sibling region."""
    op = def_op_of(v)
    if op is None:
        return 0
    if _directly_in_function_body(op):
        return 0
    return max(1, len(nest_of(op)))


def dims_for_op(op: Op, exclude=()) -> list[Op]:
    """Cache dimensions for values defined at ``op``.

    Drops a fork dimension when a worksharing loop lies deeper in the
    nest: worksharing iterations are cached by iteration index alone
    (§VI-B), independent of the thread that executed them.

    ``exclude`` holds loops whose storage is managed by an
    :class:`repro.ad.strategy.AdjointStrategy` (checkpoint / implicit):
    those loops re-run one augmented iteration at a time during the
    reverse sweep, so caches inside them hold a *single* iteration and
    the managed loop contributes no index dimension.
    """
    nest = nest_of(op)
    dims: list[Op] = []
    for i, d in enumerate(nest):
        if d in exclude:
            continue
        if d.opcode == "fork":
            deeper_ws = any(
                n.opcode == "for" and n.attrs.get("workshare")
                for n in nest[i + 1:])
            if deeper_ws:
                continue
        dims.append(d)
    return dims


def _value_defined_at_depth0(v: Value) -> bool:
    if isinstance(v, (Constant, Argument)):
        return True
    if isinstance(v, BlockArg):
        return False
    op = def_op_of(v)
    return op is not None and _directly_in_function_body(op)


def _dim_is_static(dim: Op, resolve=None) -> bool:
    """A dimension is static when its extent is computable at function
    entry (all bound operands defined at depth 0, possibly after
    looking through closure-capture loads via ``resolve``)."""
    if dim.opcode == "while":
        return False

    def ok(v: Value) -> bool:
        if _value_defined_at_depth0(v):
            return True
        return resolve is not None and resolve(v) is not None

    if dim.opcode == "fork":
        return ok(dim.operands[0])
    # for / parallel_for
    return all(ok(o) for o in dim.operands)


@dataclass
class CacheSlot:
    """Storage assignment for one cached value (or synthetic)."""

    key: object                       # Value, or (Op, tag) for synthetics
    elem: Type
    dims: list[Op]                    # static dims below the dynamic split
    dyn_anchor: Optional[Op]          # innermost dynamic dim, or None
    slot_id: int = 0

    @property
    def kind(self) -> str:
        if self.dyn_anchor is not None:
            return "hybrid" if self.dims else "dyn"
        return "indexed"


class CachePlan:
    def __init__(self) -> None:
        #: Value -> "free" | "recompute" | "cache"
        self.resolution: dict[Value, str] = {}
        self.slots: dict[object, CacheSlot] = {}
        #: dynamic loop op -> ordered slot keys pushed per iteration
        self.dyn_groups: dict[Op, list[object]] = {}
        self.needed: set[Value] = set()
        #: pointer values validated for reverse re-derivation
        self.needed_ptrs: set[Value] = set()
        #: pointer loads whose (primal, shadow) values are cached as
        #: objects because the slot may be overwritten (closure records
        #: not cleaned up by optimization)
        self.ptr_cached_loads: set = set()
        #: in-region value -> equivalent depth-0 value (resolved through
        #: unique closure-capture stores; Enzyme knows the kmpc capture
        #: convention, §V-C: "marking information which is required to
        #: compute the derivative of the parallel construct")
        self.subst: dict[Value, Value] = {}
        self.stats: dict = {}

    def slot_for(self, key) -> Optional[CacheSlot]:
        return self.slots.get(key)

    def is_cached(self, v: Value) -> bool:
        return self.resolution.get(v) == "cache"


class CachePlanner:
    def __init__(self, fn: Function, module: Module, aliasing: AliasInfo,
                 activity: ActivityInfo, cache_all: bool = False,
                 nominal_extent: int = 64,
                 managed_loops: frozenset = frozenset()) -> None:
        self.fn = fn
        self.module = module
        self.aliasing = aliasing
        self.activity = activity
        self.cache_all = cache_all
        self.nominal_extent = nominal_extent
        #: Loops whose storage an AdjointStrategy manages: they add no
        #: cache dimension (single-iteration caches; see dims_for_op).
        self.managed_loops = managed_loops
        self.plan = CachePlan()
        self._slot_ids = 0

    # ------------------------------------------------------------------
    def build(self) -> CachePlan:
        needed = self._collect_needed()
        closure = self._close(needed)
        # Values hash by object identity, so iterating these sets
        # directly would vary from process to process and leak into
        # slot numbering (and from there into the generated gradient
        # IR, defeating any source-keyed compile cache).  Iterate in
        # program order instead.
        order: dict = {}
        for i, op in enumerate(self.fn.walk()):
            if op.result is not None:
                order[op.result] = i
        rank = order.get
        fallback = len(order)
        self._classify(sorted(closure, key=lambda v: rank(v, fallback)),
                       sorted(needed, key=lambda v: rank(v, fallback)))
        self._assign_slots()
        self.plan.stats = {
            "needed": len(needed),
            "closure": len(closure),
            "cached": sum(1 for r in self.plan.resolution.values()
                          if r == "cache"),
            "recompute": sum(1 for r in self.plan.resolution.values()
                             if r == "recompute"),
        }
        return self.plan

    # ------------------------------------------------------------------
    # Phase 1: what does the reverse pass need?
    # ------------------------------------------------------------------
    def _collect_needed(self) -> set[Value]:
        needed: set[Value] = set()
        act = self.activity

        def need(v: Value) -> None:
            if isinstance(v, Constant):
                return
            if isinstance(v.type, PointerType):
                self._need_pointer(v, needed)
            else:
                needed.add(v)

        for op in self.fn.walk():
            oc = op.opcode
            if oc in RULES or oc in ZERO_DERIVATIVE:
                if op.result is None or not act.value_active(op.result):
                    continue
                if oc in ZERO_DERIVATIVE:
                    continue
                rule = RULES[oc]
                active = _operand_active(op, act)
                for dep in rule.deps(op, active):
                    need(dep)
            elif oc == "load":
                if op.result.type is F64 and act.value_active(op.result):
                    need(op.operands[1])
                    need(op.operands[0])
                elif op.result.type in (Request, Task):
                    # handle loads: shadow re-derivation needs the pointer
                    # chain and the index
                    need(op.operands[1])
                    need(op.operands[0])
            elif oc == "store":
                if self._dest_active(op.operands[1]):
                    need(op.operands[2])
                    need(op.operands[1])
            elif oc == "atomic":
                if self._dest_active(op.operands[1]):
                    need(op.operands[2])
                    need(op.operands[1])
            elif oc in ("memset", "memcpy"):
                if self._dest_active(op.operands[0]):
                    for v in op.operands:
                        need(v)
            elif oc == "alloc":
                self._plan_shadow_persistence(op)
            elif oc == "if":
                need(op.operands[0])
            elif oc == "for":
                for v in op.operands:
                    need(v)
            elif oc == "while":
                self._add_synthetic((op, "trip"), I64, op)
            elif oc == "parallel_for":
                for v in op.operands:
                    need(v)
            elif oc == "fork":
                need(op.operands[0])
            elif oc == "call":
                callee = op.attrs["callee"]
                if callee.startswith("mpi."):
                    for v in op.operands:
                        need(v)
                    if callee == "mpi.wait":
                        # forward shadow (the record) of the waited
                        # request must be preserved to the reverse wait
                        self._add_synthetic((op, "record"), Request, op)
                    if callee == "mpi.allreduce":
                        self._add_synthetic((op, "record"), Request, op)
                    if callee == "mpi.reduce":
                        self._add_synthetic((op, "record"), Request, op)
                elif callee == "task.wait":
                    pass  # reverse-flow shadow, nothing to preserve
                elif callee == "jl.gc_preserve_begin":
                    for v in op.operands:
                        need(v)
        self.plan.needed = set(needed)
        return needed

    def _dest_active(self, ptr: Value) -> bool:
        return self.activity.ptr_active(ptr, self.aliasing)

    def _need_pointer(self, ptr: Value, needed: set[Value]) -> None:
        """Validate that a pointer can be re-derived in the reverse pass
        and register its integer dependencies."""
        if ptr in self.plan.needed_ptrs:
            return
        self.plan.needed_ptrs.add(ptr)
        if isinstance(ptr, (Argument, Constant)):
            return
        op = def_op_of(ptr)
        if op is None:
            raise PlanError(f"pointer {ptr!r} has no derivation")
        oc = op.opcode
        if oc == "alloc":
            return  # primal clone / fresh reverse shadow
        if oc == "ptradd":
            needed.add(op.operands[1])
            self._need_pointer(op.operands[0], needed)
            return
        if oc == "load":
            base = op.operands[0]
            if not self.aliasing.is_readonly(base):
                # The pointer slot may be overwritten: preserve the
                # primal and shadow pointer values themselves (object
                # caches) instead of re-deriving through memory.
                self.plan.ptr_cached_loads.add(op)
                self._add_synthetic((op, "pptr"), op.result.type, op)
                self._add_synthetic((op, "sptr"), op.result.type, op)
                return
            needed.add(op.operands[1])
            self._need_pointer(base, needed)
            return
        if oc == "call" and op.attrs["callee"] == "jl.arrayptr":
            self._need_pointer(op.operands[0], needed)
            return
        raise PlanError(f"unsupported pointer derivation {op!r}")

    def _add_synthetic(self, key, elem: Type, op: Op) -> None:
        dims = dims_for_op(op, self.managed_loops)
        self._make_slot(key, elem, dims)

    def _plan_shadow_persistence(self, op: Op) -> None:
        """Region-local allocations that need shadows get their forward
        shadow *pointer* cached when the region is not parallel, so the
        reverse pass reuses the very same shadow buffer (anything may
        have captured it — e.g. an MPI shadow request).  Inside parallel
        regions the reverse allocates fresh zeroed shadows instead
        (shadow state cannot legally escape a parallel iteration, and
        MPI is not permitted there)."""
        if op.parent is None or op.parent.parent_op is None:
            return  # function-level: the forward SSA shadow is in scope
        if not self._alloc_needs_shadow(op):
            return
        dims = dims_for_op(op, self.managed_loops)
        parallel = any(
            d.opcode in ("parallel_for", "fork")
            or (d.opcode == "for" and d.attrs.get("workshare"))
            or d.attrs.get("simd")
            for d in dims)
        if parallel:
            return
        self._make_slot((op, "shadowptr"), op.result.type, dims)

    def _alloc_needs_shadow(self, alloc: Op) -> bool:
        elem = alloc.result.type.elem
        if isinstance(elem, PointerType) or elem in (Request, Task):
            return True
        if elem is not F64:
            return False
        return self.activity.origin_active(("alloc", alloc)) or \
            self.activity.all_origins_active

    # ------------------------------------------------------------------
    # Depth-0 resolution through unique capture stores
    # ------------------------------------------------------------------
    def resolve_depth0(self, v: Value, depth: int = 0) -> Optional[Value]:
        """Return a depth-0 value provably equal to ``v`` (possibly by
        looking through a load whose location has exactly one store,
        at depth 0, of a depth-0 value), else None."""
        if depth > 8:
            return None
        if _value_defined_at_depth0(v):
            return v
        cached = self.plan.subst.get(v)
        if cached is not None:
            return cached
        if isinstance(v, BlockArg) and v.owner is not None and \
                v.owner.opcode == "fork" and v.index == 1:
            marker = ForkNThreads(v.owner)
            self.plan.subst[v] = marker
            return marker
        op = def_op_of(v)
        if op is None or op.opcode != "load":
            return None
        if self._store_map is None:
            self._build_store_map()
        key = _loc_ident(op.operands[0], op.operands[1])
        if key is None:
            return None
        stores = self._store_map.get(key)
        if stores is None or len(stores) != 1:
            return None
        store = stores[0]
        if nest_of(store):
            return None  # store not at depth 0
        # Bulk writes (memset/memcpy) to a possibly-aliasing buffer
        # invalidate exact-location forwarding.
        for bulk in self._bulk_writes:
            if self.aliasing.may_alias(bulk.operands[0], op.operands[0]):
                return None
        resolved = self.resolve_depth0(store.operands[0], depth + 1)
        if resolved is not None:
            self.plan.subst[v] = resolved
        return resolved

    _store_map = None

    def _build_store_map(self) -> None:
        self._store_map = {}
        self._bulk_writes = []
        for op in self.fn.walk():
            if op.opcode == "store":
                key = _loc_ident(op.operands[1], op.operands[2])
                if key is not None:
                    self._store_map.setdefault(key, []).append(op)
            elif op.opcode in ("memset", "memcpy"):
                self._bulk_writes.append(op)

    # ------------------------------------------------------------------
    # Phase 2: dependency closure over recomputation
    # ------------------------------------------------------------------
    def _recompute_deps(self, v: Value) -> Optional[list[Value]]:
        """Operand values needed to recompute ``v`` in the reverse pass,
        or None when ``v`` cannot be recomputed."""
        op = def_op_of(v)
        if op is None:
            return None
        oc = op.opcode
        from ..ir.opinfo import OP_INFO
        if oc in OP_INFO:
            return [o for o in op.operands if not isinstance(o, Constant)]
        if oc == "load":
            if self.aliasing.is_readonly(op.operands[0]):
                self._need_pointer(op.operands[0], self.plan.needed)
                return [op.operands[1]]
            return None
        if oc == "call" and op.attrs["callee"] in _PURE_INTRINSICS:
            return []
        return None

    def _close(self, needed: set[Value]) -> set[Value]:
        closure: set[Value] = set()
        work = [v for v in needed]
        while work:
            v = work.pop()
            if v in closure or self._is_free(v):
                continue
            closure.add(v)
            deps = self._recompute_deps(v)
            if deps:
                for d in deps:
                    if d not in closure and not self._is_free(d):
                        work.append(d)
        return closure

    def _is_free(self, v: Value) -> bool:
        if isinstance(v, (Constant, Argument, BlockArg)):
            return True
        if isinstance(v.type, PointerType):
            return True  # pointers are re-derived, never cached
        return depth_of(v) == 0

    # ------------------------------------------------------------------
    # Phase 3: min-cut (or cache-all)
    # ------------------------------------------------------------------
    def _cacheable(self, v: Value) -> bool:
        return v.type in (F64, I64, I1, Request, Task)

    def _cache_weight(self, v: Value) -> float:
        op = def_op_of(v)
        weight = float(v.type.size_bytes)
        if op is not None:
            for dim in dims_for_op(op, self.managed_loops):
                weight *= self._dim_extent_estimate(dim)
        return weight

    def _dim_extent_estimate(self, dim: Op) -> float:
        if dim.opcode in ("for", "parallel_for"):
            lb, ub = dim.operands[0], dim.operands[1]
            if isinstance(lb, Constant) and isinstance(ub, Constant):
                return max(1, ub.value - lb.value)
        if dim.opcode == "fork":
            return 16.0
        return float(self.nominal_extent)

    def _classify(self, closure: list[Value], needed: list[Value]) -> None:
        """``closure`` and ``needed`` come in program order (see build)."""
        res = self.plan.resolution
        in_closure = set(closure)
        for v in closure:
            res[v] = "recompute"  # refined below

        if self.cache_all:
            for v in closure:
                if self._cacheable(v):
                    res[v] = "cache"
                elif self._recompute_deps(v) is None:
                    raise PlanError(f"value {v!r} is neither cacheable nor "
                                    f"recomputable")
            return

        # Min vertex cut.
        G = nx.DiGraph()
        SOURCE, SINK = "S", "T"
        INF = float("inf")

        def v_in(v):
            return ("in", v)

        def v_out(v):
            return ("out", v)

        for v in closure:
            cap = self._cache_weight(v) if self._cacheable(v) else INF
            G.add_edge(v_in(v), v_out(v), capacity=cap)
            deps = self._recompute_deps(v)
            if deps is None:
                if not self._cacheable(v):
                    raise PlanError(
                        f"value {v!r} must be preserved but cannot be "
                        f"cached")
                G.add_edge(SOURCE, v_in(v), capacity=INF)
            else:
                for d in deps:
                    if not self._is_free(d):
                        G.add_edge(v_out(d), v_in(v), capacity=INF)
        for v in needed:
            if v in in_closure:
                G.add_edge(v_out(v), SINK, capacity=INF)

        if SOURCE in G and SINK in G and nx.has_path(G, SOURCE, SINK):
            cut_value, (s_side, t_side) = nx.minimum_cut(
                G, SOURCE, SINK, capacity="capacity")
            if cut_value == INF:
                raise PlanError("min-cut failed: uncuttable path "
                                "(uncacheable mandatory value)")
            for v in closure:
                if v_in(v) in s_side and v_out(v) in t_side:
                    res[v] = "cache"

    # ------------------------------------------------------------------
    # Phase 4: storage assignment
    # ------------------------------------------------------------------
    def _assign_slots(self) -> None:
        for v, r in self.plan.resolution.items():
            if r == "cache":
                op = def_op_of(v)
                dims = (dims_for_op(op, self.managed_loops)
                        if op is not None else [])
                self._make_slot(v, v.type, dims)

    def _make_slot(self, key, elem: Type, dims: list[Op]) -> CacheSlot:
        existing = self.plan.slots.get(key)
        if existing is not None:
            return existing
        dyn_anchor: Optional[Op] = None
        static_dims: list[Op] = []
        last_dynamic = -1
        for i, d in enumerate(dims):
            if not _dim_is_static(d, self.resolve_depth0):
                last_dynamic = i
        if last_dynamic >= 0:
            dyn_anchor = dims[last_dynamic]
            static_dims = dims[last_dynamic + 1:]
            # Dynamic caches are serial; a parallel dim outside the
            # anchor would mean vector pushes.
            for d in dims[:last_dynamic]:
                if d.opcode in ("parallel_for", "fork") or (
                        d.opcode == "for" and d.attrs.get("workshare")):
                    raise PlanError(
                        "dynamic-trip-count loop nested inside a parallel "
                        "region is not supported by the cache planner")
        else:
            static_dims = dims
        self._slot_ids += 1
        slot = CacheSlot(key=key, elem=elem, dims=static_dims,
                         dyn_anchor=dyn_anchor, slot_id=self._slot_ids)
        self.plan.slots[key] = slot
        if dyn_anchor is not None:
            self.plan.dyn_groups.setdefault(dyn_anchor, []).append(key)
        return slot


def _loc_ident(ptr: Value, idx: Value):
    """Identity key of an exact memory location (pointer value identity
    plus a constant or value-identity index)."""
    if isinstance(idx, Constant):
        return (id(ptr), ("c", idx.value))
    return (id(ptr), ("v", id(idx)))


def _operand_active(op: Op, act: ActivityInfo):
    def active(i: int) -> bool:
        o = op.operands[i]
        return o.type is F64 and not isinstance(o, Constant) and \
            act.value_active(o)
    return active
