"""Pluggable adjoint storage/recompute strategies.

The min-cut cache planner (§IV-C) stores O(steps) primal state for a
time loop, which caps how long a loop we can differentiate.  This
module makes the storage decision pluggable, in the shape of
optimistix's ``AbstractAdjoint`` hierarchy:

* :class:`CacheAllAdjoint` — the existing behaviour: every loop is a
  cache dimension and the min-cut (or cache-all ablation) plan decides
  value-by-value.  Default, bit-identical to the pre-strategy engine.
* :class:`CheckpointAdjoint` — recursive binary checkpointing over a
  top-level counted loop: the forward sweep runs primal-only and keeps
  ``ceil(log2 N) + 2`` state snapshots (the stack plus the final
  state); the reverse sweep re-runs one augmented iteration at a time
  from the nearest snapshot (O(log N) live state, O(N log N)
  recompute).  Results are bit-identical to cache-all — gradients and
  final primal state: snapshots are bitwise copies and every augmented
  step re-executes exactly the ops of the original forward iteration.
* :class:`ImplicitAdjoint` — implicit-function-theorem adjoint of a
  loop tagged as a fixed-point iteration (``adjoint='implicit'``):
  instead of unrolling, the reverse sweep iterates the adjoint map
  x̄ ← Jᵀ x̄ at the converged state, accumulating
  θ̄ = Σₖ (∂f/∂θ)ᵀ (Jᵀ)ᵏ x̄ → (∂f/∂θ)ᵀ (I − Jᵀ)⁻¹ x̄.

A strategy is selected globally via ``ADConfig(adjoint=...)`` and
overridden per-loop with the ``adjoint`` attribute on a ``for`` op
(``{adjoint='checkpoint'}``).  Implicit adjoints change *what* is
computed (they are exact only at a fixed point), so they apply only to
explicitly tagged loops, never via the global default alone.

Ineligible loops (dynamic bounds, MPI/task calls in the body, unknown
write targets, ...) silently fall back to cache-all; the reasons are
recorded on ``ADTransform.adjoint_report`` and surfaced by
``repro.tools.summarize --adjoint-report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir.ops import Block, Op
from ..ir.types import F64, I1, I64
from ..ir.values import Value
from ..passes.aliasing import _WRITING_INTRINSICS, UNKNOWN
from .cacheplan import _dim_is_static, _value_defined_at_depth0, nest_of

#: Valid values of the per-loop ``adjoint`` attribute / ADConfig field.
STRATEGY_NAMES = ("cache-all", "checkpoint", "implicit")


def _walk(block: Block):
    for op in block.ops:
        yield op
        for r in op.regions:
            yield from _walk(r)


@dataclass
class AdjointPlan:
    """Result of :meth:`AdjointStrategy.plan` for one loop."""

    loop: Op
    eligible: bool
    #: Human-readable fallback reason when not eligible.
    reason: str = ""
    #: Primal depth-0 pointer values (arguments / top-level allocs)
    #: whose pointees the loop body may write — the loop-carried state
    #: that snapshots must capture.  Program order (deterministic).
    state: list = field(default_factory=list)


class AdjointStrategy:
    """Storage/recompute policy for one (or every) primal loop.

    ``plan`` decides applicability and identifies the loop-carried
    state; ``emit_forward_sweep`` / ``emit_reverse_sweep`` emit the
    loop's augmented-forward and reverse IR through the transform's
    builder.  The transform calls them in place of its hardwired
    ``_forward_loop`` / ``_reverse_for`` when the loop is managed.
    """

    name = "abstract"

    def fingerprint(self, config) -> str:
        """Cache-key component: must differ whenever generated IR may."""
        return self.name

    def plan(self, tr, op: Op) -> AdjointPlan:
        raise NotImplementedError

    def emit_forward_sweep(self, tr, op: Op) -> None:
        raise NotImplementedError

    def emit_reverse_sweep(self, tr, op: Op, scope) -> None:
        raise NotImplementedError


class CacheAllAdjoint(AdjointStrategy):
    """The pre-strategy engine: min-cut (or cache-all) planned caches
    indexed by every enclosing loop.  Always applicable."""

    name = "cache-all"

    def plan(self, tr, op: Op) -> AdjointPlan:
        return AdjointPlan(op, True)

    def emit_forward_sweep(self, tr, op: Op) -> None:
        tr._forward_loop(op)

    def emit_reverse_sweep(self, tr, op: Op, scope) -> None:
        tr._reverse_for(op, scope)


class _ManagedStrategy(AdjointStrategy):
    """Shared eligibility analysis for strategies that re-run loop
    iterations during the reverse sweep."""

    def plan(self, tr, op: Op) -> AdjointPlan:
        reason = self._ineligible_reason(tr, op)
        if reason:
            return AdjointPlan(op, False, reason)
        state, err = self._state_origins(tr, op)
        if err:
            return AdjointPlan(op, False, err)
        return AdjointPlan(op, True, state=state)

    # ------------------------------------------------------------------
    def _ineligible_reason(self, tr, op: Op) -> Optional[str]:
        if op.opcode != "for":
            return "only counted `for` loops can be managed"
        if op.parent is None or op.parent.parent_op is not None:
            return "not a function-level loop"
        if op.attrs.get("workshare"):
            return "worksharing loops reverse in-place (§VI-A2)"
        if op.attrs.get("simd"):
            return "simd loops reverse through the vectorized plan"
        if not all(_value_defined_at_depth0(o) for o in op.operands):
            return "loop bounds are not function-entry values"
        for inner in _walk(op.body):
            oc = inner.opcode
            if oc == "while":
                return "dynamic trip-count loop in the body"
            if oc == "spawn":
                return "task spawn in the body"
            if oc == "return":
                return "return inside the loop body"
            if oc == "call":
                callee = inner.attrs.get("callee", "")
                if (callee.startswith("mpi.") or callee.startswith("jl.")
                        or callee == "task.wait"):
                    return f"runtime call {callee} in the body"
            if oc in ("for", "parallel_for", "fork") and \
                    not _dim_is_static(inner, None):
                return "inner region with non-static extent"
        return None

    def _state_origins(self, tr, op: Op):
        """Depth-0 pointer values the body may write through, in
        program order.  Superset-safe: snapshotting an unwritten buffer
        only costs memory."""
        state: list[Value] = []
        seen: set[int] = set()
        for inner in _walk(op.body):
            oc = inner.opcode
            targets = []
            if oc in ("store", "atomic"):
                targets.append(inner.operands[1])
            elif oc in ("memset", "memcpy"):
                targets.append(inner.operands[0])
            elif oc == "call":
                idxs = _WRITING_INTRINSICS.get(inner.attrs.get("callee"), ())
                targets.extend(inner.operands[i] for i in idxs)
            for t in targets:
                provs = tr.aliasing.provenance(t)
                if UNKNOWN in provs:
                    return None, "written pointer with unknown provenance"
                for prov in sorted(provs, key=_prov_order):
                    kind, obj = prov
                    if kind == "arg":
                        base = obj
                    else:  # ("alloc", AllocOp)
                        if op in nest_of(obj):
                            continue  # re-created every iteration
                        if obj.parent is None or \
                                obj.parent.parent_op is not None:
                            return None, ("writes a buffer allocated in "
                                          "another region")
                        base = obj.result
                    elem = getattr(base.type, "elem", None)
                    if elem not in (F64, I64, I1):
                        # Snapshots are bitwise buffer copies; pointer /
                        # handle state cannot be restored that way.
                        return None, (f"state buffer {base!r} has "
                                      f"non-numeric element type {elem}")
                    if id(base) not in seen:
                        seen.add(id(base))
                        state.append(base)
        return state, None


def _prov_order(prov):
    kind, obj = prov
    if kind == "arg":
        return (0, obj.name or "")
    return (1, getattr(getattr(obj, "result", None), "name", "") or "")


class CheckpointAdjoint(_ManagedStrategy):
    """Recursive binary checkpointing (revolve-style) over a counted
    loop, emitted as an iterative stack machine in the IR so the trip
    count may be a runtime value."""

    name = "checkpoint"

    def emit_forward_sweep(self, tr, op: Op) -> None:
        tr._ckpt_forward_loop(op)

    def emit_reverse_sweep(self, tr, op: Op, scope) -> None:
        tr._ckpt_reverse_loop(op, scope)


class ImplicitAdjoint(_ManagedStrategy):
    """Implicit-function-theorem adjoint of a tagged fixed-point loop.

    ``ADConfig.implicit_iters`` bounds the Neumann iteration count of
    the reverse solve (default: the primal trip count, which matches
    the unrolled gradient exactly when the iterated map is linear)."""

    name = "implicit"

    def fingerprint(self, config) -> str:
        return f"implicit(iters={getattr(config, 'implicit_iters', None)})"

    def emit_forward_sweep(self, tr, op: Op) -> None:
        tr._implicit_forward_loop(op)

    def emit_reverse_sweep(self, tr, op: Op, scope) -> None:
        tr._implicit_reverse_loop(op, scope)


def resolve_strategy(name) -> AdjointStrategy:
    """Strategy instance for an ``ADConfig.adjoint`` / attr value."""
    if isinstance(name, AdjointStrategy):
        return name
    if name in (None, "cache-all", "cacheall", "cache_all"):
        return CacheAllAdjoint()
    if name == "checkpoint":
        return CheckpointAdjoint()
    if name == "implicit":
        return ImplicitAdjoint()
    raise ValueError(f"unknown adjoint strategy {name!r}; expected one of "
                     f"{STRATEGY_NAMES}")


def select_managed_loops(tr):
    """Assign strategies to the function-level loops of ``tr.fn``.

    Returns ``(managed, report)``: a dict mapping primal loop ops to
    ``(strategy, AdjointPlan)`` and a JSON-friendly report of managed
    loops and cache-all fallbacks (with reasons).
    """
    cfg = tr.config
    base = resolve_strategy(getattr(cfg, "adjoint", "cache-all"))
    managed: dict[Op, tuple[AdjointStrategy, AdjointPlan]] = {}
    report = {"strategy": base.name, "managed": [], "fallbacks": []}
    for op in tr.fn.body.ops:
        if op.opcode != "for":
            continue
        tag = op.attrs.get("adjoint")
        if tag is not None:
            strat = resolve_strategy(tag)
        elif isinstance(base, CheckpointAdjoint):
            strat = base
        else:
            # cache-all globally, or implicit (which requires tags).
            continue
        if isinstance(strat, CacheAllAdjoint):
            continue
        plan = strat.plan(tr, op)
        entry = {"loop": op.body.args[0].name or "i", "strategy": strat.name}
        if plan.eligible:
            managed[op] = (strat, plan)
            report["managed"].append(entry)
        else:
            entry["reason"] = plan.reason
            report["fallbacks"].append(entry)
    return managed, report


def strategy_fingerprint(config) -> str:
    """The adjoint-relevant fingerprint of an ADConfig (folded into the
    compiled backend's memo key and the disk-cache fingerprint)."""
    return resolve_strategy(
        getattr(config, "adjoint", "cache-all")).fingerprint(config)


def simulate_schedule(n: int):
    """Pure-Python reference of the checkpoint stack machine.

    Returns ``(order, peak_stack, advance_steps)`` where ``order`` is
    the sequence of iteration indices reversed (must be n-1 .. 0),
    ``peak_stack`` the maximum live snapshot count, and
    ``advance_steps`` the number of primal-only recompute steps.
    Mirrors the IR emitted by :class:`CheckpointAdjoint` exactly —
    tests cross-check both.
    """
    if n <= 0:
        return [], 0, 0
    stack = [(0, n)]
    order: list[int] = []
    advance = 0
    peak = 1
    iters = 0
    while stack:
        lo, hi = stack[-1]
        iters += 1
        if hi - lo <= 1:
            order.append(lo)
            stack.pop()
        else:
            mid = lo + (hi - lo) // 2
            advance += mid - lo
            stack[-1] = (lo, mid)
            stack.append((mid, hi))
            peak = max(peak, len(stack))
    assert iters == 2 * n - 1
    return order, peak, advance
