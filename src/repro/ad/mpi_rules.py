"""MPI adjoint handlers (paper §IV-B, §V-C, Fig. 5).

Forward (augmented) pass:

* ``MPI_Isend``/``MPI_Irecv`` are cloned, and a *shadow request record*
  is created holding the task kind, the shadow buffer, count, peer and
  tag — the exact ``d_req = (ISend, d_data, ...)`` of Fig. 5.  The
  record propagates through request arrays via shadow-memory twins of
  the stores/loads, and is preserved to the reverse pass at each
  ``MPI_Wait`` through the standard caching machinery.

Reverse pass (processed in reversed order, so waits come first):

* reverse of ``Wait``: inspect the shadow request; an ``Isend`` record
  posts the adjoint ``Irecv`` (into a temporary accumulation buffer),
  an ``Irecv`` record posts the adjoint ``Isend`` of the shadow buffer.
* reverse of ``Isend``: wait for the adjoint receive, accumulate the
  temporary into the send buffer's shadow, free the temporary.
* reverse of ``Irecv``: wait for the adjoint send, then zero the
  receive buffer's shadow (the receive overwrote the primal buffer).
* blocking ``Send``/``Recv`` reverse into ``Recv``+accumulate /
  ``Send``+zero.
* collectives: allreduce(sum) reverses into an allreduce(sum) of the
  result shadows; allreduce(min/max) records the winning ranks
  (computed with a MINLOC collective in the forward pass) and routes
  the summed adjoint to the winners only; ``bcast`` reverses into a
  reduction onto the root; ``reduce(sum)`` reverses into a broadcast.

The ``mpid.*`` runtime helpers registered here are the analogue of an
adjoint-MPI support library — except generated and invoked by the
compiler transparently, which is the paper's point (§II).
"""

from __future__ import annotations

import numpy as np

from ..interp.events import MPIEvent
from ..interp.interpreter import (
    _GEN_INTRINSICS,
    _SIMPLE_INTRINSICS,
)
from ..interp.memory import InterpreterError, PtrVal
from ..ir.function import IntrinsicInfo, Module
from ..ir.ops import CallOp, LoadOp
from ..ir.types import F64, I64, Ptr, Request, Void
from ..ir.values import Constant


# ---------------------------------------------------------------------------
# Runtime record objects
# ---------------------------------------------------------------------------

class ShadowRequest:
    """Forward-pass shadow of an MPI request (Fig. 5)."""

    __slots__ = ("kind", "d_ptr", "count", "peer", "tag")

    def __init__(self, kind: str, d_ptr, count: int, peer: int,
                 tag: int) -> None:
        self.kind = kind          # "isend" | "irecv"
        self.d_ptr = d_ptr
        self.count = count
        self.peer = peer
        self.tag = tag

    def __repr__(self) -> str:
        return f"<ShadowRequest {self.kind} peer={self.peer} tag={self.tag}>"


class ReverseRequest:
    """Reverse-pass adjoint communication in flight."""

    __slots__ = ("kind", "engine_req", "tmp_ptr", "d_ptr", "count")

    def __init__(self, kind: str, engine_req, tmp_ptr, d_ptr,
                 count: int) -> None:
        self.kind = kind          # "rev_isend" | "rev_irecv"
        self.engine_req = engine_req
        self.tmp_ptr = tmp_ptr
        self.d_ptr = d_ptr
        self.count = count


class AllreduceRecord:
    __slots__ = ("op", "d_send", "d_recv", "count", "winner")

    def __init__(self, op: str, d_send, d_recv, count: int, winner) -> None:
        self.op = op
        self.d_send = d_send
        self.d_recv = d_recv
        self.count = count
        self.winner = winner      # bool array for min/max, else None


class ReduceRecord:
    __slots__ = ("d_send", "d_recv", "count", "root")

    def __init__(self, d_send, d_recv, count: int, root: int) -> None:
        self.d_send = d_send
        self.d_recv = d_recv
        self.count = count
        self.root = root


# ---------------------------------------------------------------------------
# Transform-side emission
# ---------------------------------------------------------------------------

def register_mpid_intrinsics(module: Module) -> None:
    if "mpid.record_send" in module.intrinsics:
        return
    pf64 = Ptr(F64)

    def reg(name, arg_types, ret=Void, variadic=False):
        module.register_intrinsic(IntrinsicInfo(
            name, arg_types, ret, effects="any", variadic=variadic,
            doc="AD-generated adjoint-MPI helper."))

    reg("mpid.record_send", [pf64, I64, I64, I64], Request)
    reg("mpid.record_recv", [pf64, I64, I64, I64], Request)
    reg("mpid.reverse_wait", [Request], Request)
    reg("mpid.finish_send", [Request])
    reg("mpid.finish_recv", [Request])
    reg("mpid.record_allreduce", [pf64, pf64, pf64, pf64, I64], Request)
    reg("mpid.rev_allreduce", [Request])
    reg("mpid.record_reduce", [pf64, pf64, I64, I64], Request)
    reg("mpid.rev_reduce", [Request])
    reg("mpid.rev_bcast", [pf64, I64, I64])


def forward_mpi_call(t, op: CallOp) -> None:
    """Emit the augmented-forward form of one MPI/task intrinsic call."""
    b = t.b
    callee = op.attrs["callee"]
    args = [t._fwd_val(v) for v in op.operands]

    def clone():
        new = CallOp(callee, args,
                     op.result.type if op.result else Void, dict(op.attrs))
        b.emit(new)
        if op.result is not None:
            t.pm[op.result] = new.result
        return new

    if callee in ("task.wait", "mpi.barrier", "mpi.comm_rank",
                  "mpi.comm_size", "mpi.send", "mpi.recv"):
        clone()
        t._maybe_cache_result(op)
        return

    if callee == "mpi.isend" or callee == "mpi.irecv":
        clone()
        d_buf = t._fwd_shadow_ptr(op.operands[0])
        if d_buf is None or d_buf is args[0]:
            raise _shadow_error(op)
        rec_name = ("mpid.record_send" if callee == "mpi.isend"
                    else "mpid.record_recv")
        rec = CallOp(rec_name, [d_buf, args[1], args[2], args[3]], Request)
        b.emit(rec)
        t.sm[op.result] = rec.result
        return

    if callee == "mpi.wait":
        clone()
        shadow_req = t.sm.get(op.operands[0])
        if shadow_req is None:
            raise _shadow_error(op)
        slot = t.plan.slot_for((op, "record"))
        t._fwd_store_slot(slot, shadow_req)
        return

    if callee == "mpi.allreduce":
        clone()
        d_send = t._fwd_shadow_ptr(op.operands[0])
        d_recv = t._fwd_shadow_ptr(op.operands[1])
        if d_send is None or d_recv is None:
            raise _shadow_error(op)
        rec = CallOp("mpid.record_allreduce",
                     [args[0], args[1], d_send, d_recv, args[2]],
                     Request, {"op": op.attrs.get("op", "sum")})
        b.emit(rec)
        t._fwd_store_slot(t.plan.slot_for((op, "record")), rec.result)
        return

    if callee == "mpi.reduce":
        if op.attrs.get("op", "sum") != "sum":
            raise _unsupported(op, "only sum reductions reverse")
        clone()
        d_send = t._fwd_shadow_ptr(op.operands[0])
        d_recv = t._fwd_shadow_ptr(op.operands[1])
        if d_send is None or d_recv is None:
            raise _shadow_error(op)
        rec = CallOp("mpid.record_reduce",
                     [d_send, d_recv, args[2], args[3]], Request)
        b.emit(rec)
        t._fwd_store_slot(t.plan.slot_for((op, "record")), rec.result)
        return

    if callee == "mpi.bcast":
        clone()
        return

    raise _unsupported(op, "no augmented-forward rule")


def reverse_mpi_call(t, op: CallOp, scope) -> None:
    """Emit the reverse form of one MPI intrinsic call."""
    b = t.b
    callee = op.attrs["callee"]

    if callee in ("mpi.comm_rank", "mpi.comm_size"):
        return
    if callee == "mpi.barrier":
        b.call("mpi.barrier", ad="reverse")
        return

    if callee == "mpi.wait":
        rec = t._load_slot(t.plan.slot_for((op, "record")), scope)
        rr = CallOp("mpid.reverse_wait", [rec], Request)
        b.emit(rr)
        scope.bind(("revshadow", op.operands[0]), rr.result)
        return

    if callee == "mpi.isend" or callee == "mpi.irecv":
        rr = scope.lookup(("revshadow", op.result))
        if rr is None:
            raise _unsupported(op, "request never waited on")
        fin = ("mpid.finish_send" if callee == "mpi.isend"
               else "mpid.finish_recv")
        b.emit(CallOp(fin, [rr]))
        return

    if callee == "mpi.send":
        d_buf = t._rev_shadow_ptr(op.operands[0], scope)
        count = t._avail(op.operands[1], scope)
        dest = t._avail(op.operands[2], scope)
        tag = t._avail(op.operands[3], scope)
        tmp = b.alloc(count, F64, name="d_sendtmp")
        b.call("mpi.recv", tmp, count, dest, tag, ad="reverse")
        with b.for_(0, count, simd=True, name="k") as k:
            cur = b.load(d_buf, k)
            b.store(b.add(cur, b.load(tmp, k)), d_buf, k)
        return

    if callee == "mpi.recv":
        d_buf = t._rev_shadow_ptr(op.operands[0], scope)
        count = t._avail(op.operands[1], scope)
        src = t._avail(op.operands[2], scope)
        tag = t._avail(op.operands[3], scope)
        b.call("mpi.send", d_buf, count, src, tag, ad="reverse")
        b.memset(d_buf, 0.0, count)
        return

    if callee == "mpi.allreduce":
        rec = t._load_slot(t.plan.slot_for((op, "record")), scope)
        b.emit(CallOp("mpid.rev_allreduce", [rec]))
        return

    if callee == "mpi.reduce":
        rec = t._load_slot(t.plan.slot_for((op, "record")), scope)
        b.emit(CallOp("mpid.rev_reduce", [rec]))
        return

    if callee == "mpi.bcast":
        d_buf = t._rev_shadow_ptr(op.operands[0], scope)
        count = t._avail(op.operands[1], scope)
        root = t._avail(op.operands[2], scope)
        b.emit(CallOp("mpid.rev_bcast", [d_buf, count, root]))
        return

    raise _unsupported(op, "no reverse rule")


def _shadow_error(op):
    from .transform import ADTransformError
    return ADTransformError(
        f"{op!r}: communicated buffer has no distinct shadow; pass it "
        f"through a Duplicated argument or an active allocation")


def _unsupported(op, why):
    from .transform import ADTransformError
    return ADTransformError(f"{op!r}: {why}")


# ---------------------------------------------------------------------------
# Runtime handlers (interpreter intrinsics)
# ---------------------------------------------------------------------------

def _h_record_send(interp, op, args):
    d_ptr, count, peer, tag = args
    return ShadowRequest("isend", d_ptr, int(count), int(peer), int(tag))


def _h_record_recv(interp, op, args):
    d_ptr, count, peer, tag = args
    return ShadowRequest("irecv", d_ptr, int(count), int(peer), int(tag))


def _stress_safepoint(interp) -> None:
    # Adjoint communication is a foreign-call boundary too: under GC
    # stress the reverse pass collects here, which is why Enzyme must
    # extend gc_preserve regions with shadow buffers (§VI-C2).
    if interp.config.gc_stress:
        interp.memory.safepoint()


def _g_reverse_wait(interp, op, args):
    rec: ShadowRequest = args[0]
    if not isinstance(rec, ShadowRequest):
        raise InterpreterError(f"reverse_wait on non-record {rec!r}")
    interp.flush_serial()
    _stress_safepoint(interp)
    if rec.kind == "isend":
        tmp = interp.memory.alloc(rec.count, F64, "heap", name="d_acc")
        req = yield MPIEvent("irecv", buf=tmp, count=rec.count,
                             peer=rec.peer, tag=rec.tag)
        return ReverseRequest("rev_isend", req, tmp, rec.d_ptr, rec.count)
    req = yield MPIEvent("isend", buf=rec.d_ptr, count=rec.count,
                         peer=rec.peer, tag=rec.tag)
    return ReverseRequest("rev_irecv", req, None, rec.d_ptr, rec.count)


def _g_finish_send(interp, op, args):
    rr: ReverseRequest = args[0]
    interp.flush_serial()
    yield MPIEvent("wait", request=rr.engine_req)
    d = rr.d_ptr.buffer
    d.check_alive()
    off = int(rr.d_ptr.offset)
    tmp = rr.tmp_ptr.buffer
    d.data[off:off + rr.count] += tmp.data[:rr.count]
    interp.cost.add_load(16 * rr.count)
    interp.cost.add_store(8 * rr.count)
    interp.memory.free(rr.tmp_ptr)
    return None


def _g_finish_recv(interp, op, args):
    rr: ReverseRequest = args[0]
    interp.flush_serial()
    yield MPIEvent("wait", request=rr.engine_req)
    d = rr.d_ptr.buffer
    d.check_alive()
    off = int(rr.d_ptr.offset)
    d.data[off:off + rr.count] = 0.0
    interp.cost.add_store(8 * rr.count)
    return None


def _g_record_allreduce(interp, op, args):
    send_p, recv_p, d_send, d_recv, count = args
    count = int(count)
    kind = op.attrs.get("op", "sum")
    winner = None
    if kind in ("min", "max"):
        interp.flush_serial()
        winner = yield MPIEvent("winner_mask", buf=send_p, recvbuf=recv_p,
                                count=count, op=kind)
    return AllreduceRecord(kind, d_send, d_recv, count, winner)


def _g_rev_allreduce(interp, op, args):
    rec: AllreduceRecord = args[0]
    interp.flush_serial()
    tmp = interp.memory.alloc(rec.count, F64, "heap", name="d_ar")
    yield MPIEvent("allreduce", buf=rec.d_recv, recvbuf=tmp,
                   count=rec.count, op="sum")
    db = rec.d_send.buffer
    db.check_alive()
    off = int(rec.d_send.offset)
    t = tmp.buffer.data[:rec.count]
    if rec.winner is not None:
        db.data[off:off + rec.count] += np.where(rec.winner, t, 0.0)
    else:
        db.data[off:off + rec.count] += t
    rb = rec.d_recv.buffer
    roff = int(rec.d_recv.offset)
    rb.data[roff:roff + rec.count] = 0.0
    interp.cost.add_load(16 * rec.count)
    interp.cost.add_store(16 * rec.count)
    interp.memory.free(tmp)
    return None


def _g_rev_reduce(interp, op, args):
    rec: ReduceRecord = args[0]
    interp.flush_serial()
    tmp = interp.memory.alloc(rec.count, F64, "heap", name="d_red")
    if interp.rank == rec.root:
        rb = rec.d_recv.buffer
        roff = int(rec.d_recv.offset)
        tmp.buffer.data[:rec.count] = rb.data[roff:roff + rec.count]
    yield MPIEvent("bcast", buf=tmp, count=rec.count, root=rec.root)
    db = rec.d_send.buffer
    off = int(rec.d_send.offset)
    db.data[off:off + rec.count] += tmp.buffer.data[:rec.count]
    if interp.rank == rec.root:
        rb = rec.d_recv.buffer
        roff = int(rec.d_recv.offset)
        rb.data[roff:roff + rec.count] = 0.0
    interp.cost.add_load(16 * rec.count)
    interp.cost.add_store(8 * rec.count)
    interp.memory.free(tmp)
    return None


def _h_record_reduce(interp, op, args):
    d_send, d_recv, count, root = args
    return ReduceRecord(d_send, d_recv, int(count), int(root))


def _g_rev_bcast(interp, op, args):
    d_ptr, count, root = args
    count, root = int(count), int(root)
    interp.flush_serial()
    tmp = interp.memory.alloc(count, F64, "heap", name="d_bc")
    yield MPIEvent("reduce", buf=d_ptr, recvbuf=tmp, count=count,
                   op="sum", root=root)
    db = d_ptr.buffer
    off = int(d_ptr.offset)
    if interp.rank == root:
        db.data[off:off + count] = tmp.buffer.data[:count]
    else:
        db.data[off:off + count] = 0.0
    interp.cost.add_store(8 * count)
    interp.memory.free(tmp)
    return None


_SIMPLE_INTRINSICS.update({
    "mpid.record_send": _h_record_send,
    "mpid.record_recv": _h_record_recv,
    "mpid.record_reduce": _h_record_reduce,
})

_GEN_INTRINSICS.update({
    "mpid.reverse_wait": _g_reverse_wait,
    "mpid.finish_send": _g_finish_send,
    "mpid.finish_recv": _g_finish_recv,
    "mpid.record_allreduce": _g_record_allreduce,
    "mpid.rev_allreduce": _g_rev_allreduce,
    "mpid.rev_reduce": _g_rev_reduce,
    "mpid.rev_bcast": _g_rev_bcast,
})
