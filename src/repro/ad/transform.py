"""The Enzyme-style reverse-mode AD transformation.

``ADTransform`` turns a primal IR function into a gradient function of
the form::

    diffe_f(primal args ⨯ shadow args [, seed]):
        <cache allocations>          # strategies 1–3, §IV-C
        <augmented forward pass>     # primal clone + cache stores
        <reverse pass>               # adjoints in reversed region order
        [return d(active scalar)]

Key mechanisms (paper section in parentheses):

* every pointer-producing op gets a *shadow twin* in the forward pass,
  so shadow memory mirrors primal memory structure (§VI-A);
* shadow increments choose serial / reduction / atomic per the
  thread-locality analysis (§VI-A1);
* values needed by adjoints are recomputed or cached per the min-cut
  plan; caches are indexed by loop iteration / thread id (§VI-B) or
  pushed to dynamic caches for unknown trip counts (§IV-C);
* ``parallel_for`` reverses into an augmented forward region plus a
  reverse region over the same iteration space (Fig. 4); ``fork``
  regions reverse op-by-op with barriers preserved; a ``spawn`` in the
  primal becomes a wait in the reverse pass and a wait becomes a spawn
  (§IV-A);
* MPI nonblocking communication reverses through shadow requests
  (Fig. 5); see :mod:`repro.ad.mpi_rules`;
* ``gc_preserve`` regions are extended to cover shadows and mirrored in
  the reverse pass (§VI-C2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir.builder import IRBuilder
from ..ir.function import Function, Module
from ..ir.opinfo import OP_INFO
from ..ir.ops import (
    AllocOp,
    AtomicRMWOp,
    BarrierOp,
    Block,
    CallOp,
    ComputeOp,
    ForOp,
    ForkOp,
    IfOp,
    LoadOp,
    MemsetOp,
    Op,
    ParallelForOp,
    PtrAddOp,
    SpawnOp,
    StoreOp,
    WhileOp,
)
from ..ir.types import F64, I1, I64, PointerType, Ptr, Request, Task, Token
from ..ir.values import Argument, BlockArg, Constant, Result, Value
from ..passes.aliasing import analyze_aliasing
from ..passes.inline import force_inline_all
from .activity import analyze_activity
from .cacheplan import (
    CachePlanner,
    CacheSlot,
    PlanError,
    depth_of,
    dims_for_op,
    nest_of,
)
from .rules import RULES, ZERO_DERIVATIVE
from .tls import ATOMIC, REDUCTION, SERIAL, increment_kind, parallel_context


class ADTransformError(Exception):
    pass


# Argument activity kinds (Enzyme calling convention).
Const = "const"
Duplicated = "duplicated"
Active = "active"


@dataclass
class ADConfig:
    """Knobs of the AD engine (ablation switches included)."""

    #: Cache every reverse-needed value instead of running the min-cut
    #: recompute-vs-cache analysis (§IV-C ablation).
    cache_all: bool = False
    #: Use an atomic increment for every shadow accumulation inside
    #: parallel regions, ignoring the thread-locality analysis
    #: (§VI-A1 ablation: "legal but not desirable for performance").
    atomic_everywhere: bool = False
    #: Run the IR verifier on the generated gradient.
    verify: bool = True
    #: Name prefix of generated functions.
    prefix: str = "diffe_"
    #: Pre-AD optimization: "none" or "default" (§V-E: Enzyme runs
    #: optimization before differentiation).
    opt_level: str = "default"
    #: Enable the OpenMPOpt analogue (parallel-region load hoisting) in
    #: the pre-AD pipeline — the paper's §VIII ablation axis.
    openmp_opt: bool = False
    #: Run the cleanup pipeline on the generated gradient.
    post_opt: bool = True
    #: Memory space for AD cache allocations.  Julia frontends use "gc"
    #: (Enzyme.jl registers the GC allocation function, §VI-C2), which
    #: zero-fills on allocation — part of the Julia gradient overhead.
    cache_space: str = "stack"
    #: Run the shadow-memory race lint on the generated gradient and
    #: raise :class:`repro.sanitize.lint.LintError` if it reports a
    #: provable race.  Lint results are kept on the transform
    #: (``ADTransform.lint_result``) either way.
    sanitize: bool = False
    #: Testing/ablation override: force every parallel-region shadow
    #: increment to "serial" / "reduction" / "atomic" regardless of the
    #: thread-locality analysis.  "serial" deliberately seeds races —
    #: the sanitizer's cross-validation harness uses it.
    force_increment_kind: Optional[str] = None
    #: Run the static MPI communication analyzer and adjoint-duality
    #: verifier on the generated gradient (commcheck is the
    #: message-passing counterpart of ``sanitize``).  ``True`` checks
    #: the default communicator sizes; a tuple of ints checks those
    #: sizes.  Raises :class:`repro.sanitize.commcheck.CommCheckError`
    #: on error-severity findings; the report is kept on the transform
    #: (``ADTransform.comm_result``) either way.
    commcheck: object = False
    #: Adjoint storage/recompute strategy: "cache-all" (the §IV-C
    #: min-cut plan, default), "checkpoint" (binary checkpointing of
    #: eligible counted time loops: O(log steps) live state), or
    #: "implicit" (implicit-function-theorem adjoints of loops tagged
    #: ``adjoint='implicit'``).  Per-loop ``adjoint`` attributes
    #: override the global choice; see :mod:`repro.ad.strategy`.
    adjoint: str = "cache-all"
    #: Reverse Neumann-iteration count for implicit adjoints (None:
    #: use the primal trip count).
    implicit_iters: Optional[int] = None


def _top_level_ancestor(op: Op) -> Op:
    """The depth-0 op lexically enclosing ``op`` (or ``op`` itself)."""
    cur = op
    while True:
        blk = cur.parent
        if blk is None or blk.parent_op is None:
            return cur
        cur = blk.parent_op


class _Scope:
    """One reverse-emission scope (per reverse region instance).

    ``region_op`` is the *primal* region op this scope reverses (None at
    function level), ``block`` the reverse block being filled, and
    ``anchor_op`` the reverse region op that owns ``block`` (so a parent
    scope can insert hoisted code right before it).
    """

    __slots__ = ("parent", "bindings", "region_op", "block", "anchor_op")

    def __init__(self, parent: Optional["_Scope"] = None,
                 region_op: Optional[Op] = None,
                 block: Optional[Block] = None,
                 anchor_op: Optional[Op] = None) -> None:
        self.parent = parent
        self.bindings: dict = {}
        self.region_op = region_op
        self.block = block
        self.anchor_op = anchor_op

    def lookup(self, key):
        s = self
        while s is not None:
            if key in s.bindings:
                return s.bindings[key]
            s = s.parent
        return None

    def bind(self, key, value) -> None:
        self.bindings[key] = value


class ADTransform:
    def __init__(self, module: Module, fn_name: str, activities: list,
                 config: Optional[ADConfig] = None) -> None:
        self.module = module
        self.config = config or ADConfig()
        self.src_name = fn_name
        self.activities = [a if a is not None else Const for a in activities]
        self.grad_name = self.config.prefix + fn_name

        # Populated by build():
        self.fn: Function = None
        self.grad: Function = None
        self.b: IRBuilder = None
        self.pm: dict[Value, Value] = {}     # primal -> forward clone
        self.sm: dict[Value, Value] = {}     # primal ptr/handle -> fwd shadow
        self.arg_map: dict[Argument, Argument] = {}
        self.shadow_arg_map: dict[Argument, Argument] = {}
        self.slot_buffers: dict[int, Value] = {}    # slot_id -> buffer value
        self.slot_handles: dict[int, Value] = {}    # slot_id -> dyncache
        self.adj_storage: dict[Value, str] = {}
        self.adj_slots: dict[Value, CacheSlot] = {}
        self.rev_parallel_stack: list[Op] = []
        self.ret_value: Optional[Value] = None      # primal returned value
        self.seed_arg: Optional[Argument] = None
        self._active_scalar: Optional[Argument] = None
        self._spawn_of_wait: dict[Op, tuple[Op, list]] = {}
        self._slots_by_outer_dim: dict[Optional[Op], list[CacheSlot]] = {}
        self.lint_result = None              # set when config.sanitize
        self.comm_result = None              # set when config.commcheck
        self._mpi_buffers: list = []
        # Adjoint-strategy state (repro.ad.strategy): primal loop op ->
        # (strategy, AdjointPlan) for loops whose storage/recompute
        # schedule is managed outside the min-cut plan.
        self.managed: dict[Op, tuple] = {}
        self.adjoint_report: dict = {}
        self._ckpt: dict[Op, dict] = {}      # managed loop -> snapshot rec
        # When set, the forward emission clones primal ops only: no
        # shadow twins, no cache stores (checkpoint/implicit recompute
        # segments re-run these ops later in augmented form).
        self._primal_only = False

    # ==================================================================
    # Entry point
    # ==================================================================
    def build(self) -> str:
        if self.grad_name in self.module.functions:
            return self.grad_name

        # Work on a private copy with all user calls inlined (Enzyme
        # differentiates post-inlining; §V-E).
        work_name = f"__ad_work_{self.src_name}"
        self.fn = self.module.clone_function(self.src_name, work_name)
        force_inline_all(self.fn, self.module)
        if self.config.opt_level != "none":
            from ..passes.pass_manager import default_pipeline
            default_pipeline(openmp_opt=self.config.openmp_opt).run_function(
                self.fn, self.module)

        src = self.module.functions[self.src_name]
        if len(self.activities) != len(src.args):
            raise ADTransformError(
                f"{len(src.args)} arguments but {len(self.activities)} "
                f"activities")

        self.aliasing = analyze_aliasing(self.fn, self.module)
        self._mpi_buffers = self._collect_mpi_buffers()
        duplicated = {a for a, k in zip(self.fn.args, self.activities)
                      if k == Duplicated}
        actives = {a for a, k in zip(self.fn.args, self.activities)
                   if k == Active}
        for a in duplicated:
            if not isinstance(a.type, PointerType):
                raise ADTransformError(
                    f"Duplicated activity on non-pointer arg {a.name}")
        for a in actives:
            if a.type is not F64:
                raise ADTransformError(
                    f"Active activity requires an f64 scalar arg "
                    f"({a.name}: {a.type})")
        if len(actives) > 1:
            raise ADTransformError("at most one Active scalar argument "
                                   "is supported")
        self._active_scalar = next(iter(actives), None)

        self.activity = analyze_activity(self.fn, self.module, self.aliasing,
                                         duplicated, actives)
        from .strategy import select_managed_loops
        self.managed, self.adjoint_report = select_managed_loops(self)
        planner = CachePlanner(self.fn, self.module, self.aliasing,
                               self.activity, cache_all=self.config.cache_all,
                               managed_loops=frozenset(self.managed))
        self.plan = planner.build()

        self._compute_adj_storage()
        self._match_spawn_waits()

        self._build_signature()
        self.b = IRBuilder(self.module)
        self.b._fn = self.grad
        self.b._blocks.append(self.grad.body)
        from ..ir.values import push_builder, pop_builder
        push_builder(self.b)
        try:
            self._emit_prologue()
            self._index_slots_by_dim()
            self._forward_block(self.fn.body)
            top = _Scope(block=self.grad.body)
            self._seed_return(top)
            self._reverse_block(self.fn.body, top)
            self._emit_epilogue()
        finally:
            pop_builder(self.b)
            self.b._blocks.pop()
            self.b._fn = None

        # Drop the private working copy.
        del self.module.functions[self.fn.name]

        if self.config.post_opt:
            from ..passes.pass_manager import cleanup_pipeline
            cleanup_pipeline().run_function(self.grad, self.module)
        if self.config.verify:
            from ..ir.verifier import verify_function
            verify_function(self.grad, self.module)
        self.lint_result = None
        if self.config.sanitize:
            from ..sanitize.lint import LintError, lint_function
            self.lint_result = lint_function(self.grad, self.module)
            if self.lint_result.errors:
                raise LintError(self.lint_result)
        self.comm_result = None
        if self.config.commcheck:
            from ..sanitize.commcheck import (CommCheckError,
                                              DEFAULT_SIZES,
                                              verify_duality)
            sizes = (tuple(self.config.commcheck)
                     if isinstance(self.config.commcheck, (tuple, list))
                     else DEFAULT_SIZES)
            self.comm_result = verify_duality(
                self.module, self.src_name, self.grad_name, sizes=sizes)
            if self.comm_result.errors:
                raise CommCheckError(self.comm_result)
        return self.grad_name

    # ==================================================================
    # Signature / prologue / epilogue
    # ==================================================================
    def _build_signature(self) -> None:
        args: list[tuple[str, object]] = []
        attrs: list[dict] = []
        for a, kind in zip(self.fn.args, self.activities):
            args.append((a.name, a.type))
            attrs.append(dict(a.attrs))
            if kind == Duplicated:
                args.append(("d_" + a.name, a.type))
                attrs.append(dict(a.attrs))
        from ..ir.types import Void
        needs_seed = self.fn.ret_type is F64
        if needs_seed:
            args.append(("seed", F64))
            attrs.append({})
        ret = F64 if self._active_scalar is not None else Void
        self.grad = Function(self.grad_name, args, ret, attrs)
        # Strategy fingerprint: the compiled backend folds this into its
        # memo/disk-cache keys so gradients generated under different
        # adjoint strategies never share a compiled artifact.
        from .strategy import strategy_fingerprint
        self.grad.attrs["adjoint"] = strategy_fingerprint(self.config)
        self.module.add_function(self.grad)

        gi = iter(self.grad.args)
        for a, kind in zip(self.fn.args, self.activities):
            ga = next(gi)
            self.arg_map[a] = ga
            self.pm[a] = ga
            if kind == Duplicated:
                sa = next(gi)
                self.shadow_arg_map[a] = sa
                self.sm[a] = sa
            else:
                self.sm[a] = ga  # inactive: shadow aliases primal (unused)
        if needs_seed:
            self.seed_arg = self.grad.args[-1]

    def _emit_prologue(self) -> None:
        b = self.b
        # Dynamic cache handles (strategy 3).
        for slot in self.plan.slots.values():
            if slot.dyn_anchor is not None:
                self.slot_handles[slot.slot_id] = b.cache_create()
        # Active-scalar adjoint cell.
        if self._active_scalar is not None:
            self._active_cell = b.alloc(1, F64, name="d_active")

    def _emit_epilogue(self) -> None:
        b = self.b
        if self._active_scalar is not None:
            b.ret(b.load(self._active_cell, 0))
        else:
            from ..ir.ops import ReturnOp
            self.grad.body.append(ReturnOp([]))

    def _seed_return(self, scope: _Scope) -> None:
        if self.ret_value is not None and self.seed_arg is not None:
            self._adj_accum(self.ret_value, self.seed_arg, scope)

    # ==================================================================
    # Pre-analyses
    # ==================================================================
    def _compute_adj_storage(self) -> None:
        """SSA vs slot adjoint storage per active float value (slots for
        values used in regions nested below their definition)."""
        def_block: dict[Value, Block] = {}
        uses_other_block: set[Value] = set()
        for a in self.fn.args:
            def_block[a] = self.fn.body
        for op in self.fn.walk():
            if op.result is not None:
                def_block[op.result] = op.parent
            for region in op.regions:
                for arg in region.args:
                    def_block[arg] = region
        for op in self.fn.walk():
            for v in op.operands:
                db = def_block.get(v)
                if db is not None and db is not op.parent:
                    uses_other_block.add(v)
        for op in self.fn.walk():
            r = op.result
            if r is None or r.type is not F64:
                continue
            if not self.activity.value_active(r):
                continue
            if r in uses_other_block:
                self.adj_storage[r] = "slot"
                self._make_adj_slot(r, op)
            else:
                self.adj_storage[r] = "ssa"
        if self._active_scalar is not None:
            self.adj_storage[self._active_scalar] = "active-cell"
        # Values returned at top level keep SSA storage unless flagged.

    def _make_adj_slot(self, v: Value, op: Op) -> None:
        par_dims = [d for d in dims_for_op(op)
                    if d.opcode in ("parallel_for", "fork")
                    or (d.opcode == "for" and d.attrs.get("workshare"))]
        slot = CacheSlot(key=("adj", v), elem=F64, dims=par_dims,
                         dyn_anchor=None, slot_id=-1)
        # Reuse the planner's slot-id space.
        slot.slot_id = 100_000 + len(self.adj_slots)
        self.adj_slots[v] = slot

    def _match_spawn_waits(self) -> None:
        """Associate each ``task.wait`` with the spawn site it waits on
        (required to emit the reverse task's body)."""
        stores_by_origin: dict = {}
        for op in self.fn.walk():
            if op.opcode == "store" and op.operands[0].type is Task:
                origin = self.aliasing.provenance(op.operands[1])
                stores_by_origin.setdefault(origin, []).append(op)
        for op in self.fn.walk():
            if op.opcode == "call" and op.attrs["callee"] == "task.wait":
                v = op.operands[0]
                spawn_op: Optional[Op] = None
                if isinstance(v, Result) and v.op.opcode == "spawn":
                    spawn_op = v.op
                elif isinstance(v, Result) and v.op.opcode == "load":
                    origin = self.aliasing.provenance(v.op.operands[0])
                    stores = stores_by_origin.get(origin, [])
                    # Exact-location refinement: a constant-index load
                    # matches only constant-index stores at the same slot.
                    load_idx = v.op.operands[1]
                    if isinstance(load_idx, Constant):
                        stores = [s for s in stores
                                  if isinstance(s.operands[2], Constant)
                                  and s.operands[2].value == load_idx.value]
                    spawn_defs = {s.operands[0].op for s in stores
                                  if isinstance(s.operands[0], Result)
                                  and s.operands[0].op.opcode == "spawn"}
                    if len(spawn_defs) == 1:
                        spawn_op = next(iter(spawn_defs))
                if spawn_op is None:
                    raise ADTransformError(
                        f"cannot statically associate {op!r} with its "
                        f"spawn site; task graphs must be congruent "
                        f"(the i-th wait waits the i-th spawned task)")
                # Positional ivar correspondence beyond the common nest.
                sn, wn = nest_of(spawn_op), nest_of(op)
                common = 0
                while (common < len(sn) and common < len(wn)
                       and sn[common] is wn[common]):
                    common += 1
                s_extra = [d for d in sn[common:] if d.opcode != "fork"]
                w_extra = [d for d in wn[common:] if d.opcode != "fork"]
                if len(s_extra) != len(w_extra):
                    raise ADTransformError(
                        "spawn/wait loop nests are not congruent")
                pairs = [(s.body.args[0], w.body.args[0])
                         for s, w in zip(s_extra, w_extra)]
                self._spawn_of_wait[op] = (spawn_op, pairs)

    def _index_slots_by_dim(self) -> None:
        for slot in list(self.plan.slots.values()) + list(
                self.adj_slots.values()):
            if slot.dyn_anchor is not None:
                continue
            outer = slot.dims[0] if slot.dims else None
            if outer is not None:
                # Allocate at function depth: immediately before the
                # top-level op enclosing the dimension (caches must be
                # visible to both the forward and the reverse region).
                outer = _top_level_ancestor(outer)
            self._slots_by_outer_dim.setdefault(outer, []).append(slot)
        # Slots with no dims allocate at function entry.
        for slot in self._slots_by_outer_dim.get(None, []):
            self._alloc_slot_buffer(slot)

    # ==================================================================
    # Slot storage helpers
    # ==================================================================
    def _dim_val(self, v: Value) -> Value:
        """Forward value of a dim bound, looking through closure-capture
        loads via the planner's substitution map."""
        from .cacheplan import ForkNThreads
        resolved = self.plan.subst.get(v, v)
        if isinstance(resolved, ForkNThreads):
            b = self.b
            nt = self._fwd_val(resolved.fork_op.operands[0])
            return b.select(b.cmp("le", nt, 0),
                            b.call("rt.num_threads"), nt)
        return self._fwd_val(resolved)

    def _dim_extent_fwd(self, dim: Op) -> Value:
        """Emit the extent of a static dim (values must be in pm)."""
        b = self.b
        if dim.opcode == "fork":
            nt = self._dim_val(dim.operands[0])
            runtime = b.call("rt.num_threads")
            is_zero = b.cmp("le", nt, 0)
            return b.select(is_zero, runtime, nt)
        lb = self._dim_val(dim.operands[0])
        ub = self._dim_val(dim.operands[1])
        if dim.opcode == "parallel_for":
            return b.max(b.sub(ub, lb), 0)
        step = self._dim_val(dim.operands[2])
        span = b.max(b.sub(ub, lb), 0)
        return b.idiv(b.add(span, b.sub(step, 1)), step)

    def _alloc_slot_buffer(self, slot: CacheSlot) -> Value:
        b = self.b
        total: Value = Constant(1, I64)
        for dim in slot.dims:
            total = b.mul(total, self._dim_extent_fwd(dim))
        buf = b.alloc(total, slot.elem, space=self.config.cache_space,
                      name=f"cache{slot.slot_id}")
        # AD caches stream to DRAM in the performance model (written
        # once in the forward sweep, read once in the reverse sweep).
        if slot.slot_id < 100_000:  # adjoint slots stay cache-resident
            buf.op.attrs["stream"] = True
            buf.op.attrs["adcache"] = True
        self.slot_buffers[slot.slot_id] = buf
        return buf

    def _slot_flat_index(self, slot: CacheSlot, ivar_of) -> Value:
        """Emit the linearized index; ``ivar_of(dim)`` returns the current
        index value of a dim (forward: pm[ivar]; reverse: scope binding)."""
        b = self.b
        idx: Value = Constant(0, I64)
        for dim in slot.dims:
            extent = self._dim_extent_cached(dim)
            local = self._dim_local_index(dim, ivar_of)
            idx = b.add(b.mul(idx, extent), local)
        return idx

    def _dim_extent_cached(self, dim: Op) -> Value:
        # Extents are depth-0 expressions; emitting them repeatedly is
        # correct (CSE can clean up).  Forward values are in pm.
        return self._dim_extent_fwd(dim)

    def _dim_local_index(self, dim: Op, ivar_of) -> Value:
        b = self.b
        if dim.opcode == "fork":
            return ivar_of(dim.body.args[0])
        iv = ivar_of(dim.body.args[0])
        lb = self._dim_val(dim.operands[0])
        if dim.opcode == "parallel_for":
            return b.sub(iv, lb)
        step = self._dim_val(dim.operands[2])
        return b.idiv(b.sub(iv, lb), step)

    def _fwd_val(self, v: Value) -> Value:
        if isinstance(v, Constant):
            return v
        out = self.pm.get(v)
        if out is None:
            raise ADTransformError(f"forward value for {v!r} not available")
        return out

    # --- forward-side slot addressing ---------------------------------
    def _fwd_slot_buffer(self, slot: CacheSlot) -> Value:
        if slot.dyn_anchor is not None:
            buf = self._fwd_dyn_arrays.get(slot.slot_id)
            if buf is None:
                raise ADTransformError(
                    f"dynamic cache array for slot {slot.slot_id} not bound")
            return buf
        return self.slot_buffers[slot.slot_id]

    def _fwd_store_slot(self, slot: CacheSlot, value: Value) -> None:
        b = self.b
        buf = self._fwd_slot_buffer(slot)
        idx = self._slot_flat_index(slot, lambda ba: self._fwd_val(ba))
        b.store(value, buf, idx)

    # ==================================================================
    # FORWARD (augmented) pass
    # ==================================================================
    _fwd_dyn_arrays: dict = None

    def _forward_block(self, block: Block) -> None:
        if self._fwd_dyn_arrays is None:
            self._fwd_dyn_arrays = {}
        b = self.b
        for op in block.ops:
            oc = op.opcode

            # Allocate indexed cache buffers right before their
            # outermost dim op enters scope.
            for slot in self._slots_by_outer_dim.get(op, []):
                self._alloc_slot_buffer(slot)

            if oc == "return":
                if op.operands:
                    self.ret_value = op.operands[0]
                continue
            if oc == "free":
                continue  # deferred: buffers stay alive for the reverse
            if oc in ("for", "while"):
                m = self.managed.get(op)
                if m is not None:
                    m[0].emit_forward_sweep(self, op)
                else:
                    self._forward_loop(op)
            elif oc == "parallel_for":
                self._forward_parallel_region(op, ParallelForOp(
                    self._fwd_val(op.lb), self._fwd_val(op.ub),
                    framework=op.attrs.get("framework", "openmp"),
                    schedule=op.attrs.get("schedule", "static")))
            elif oc == "fork":
                self._forward_parallel_region(op, ForkOp(
                    self._fwd_val(op.operands[0]),
                    framework=op.attrs.get("framework", "openmp")))
            elif oc == "if":
                new = IfOp(self._fwd_val(op.operands[0]))
                b.emit(new)
                with b.at(new.then_body):
                    self._forward_block(op.then_body)
                with b.at(new.else_body):
                    self._forward_block(op.else_body)
            elif oc == "spawn":
                new = SpawnOp(framework=op.attrs.get("framework", "julia"))
                b.emit(new)
                self.pm[op.result] = new.result
                with b.at(new.body):
                    self._forward_block(op.body)
            elif oc == "call":
                self._forward_call(op)
            else:
                self._forward_simple(op)

    def _forward_loop(self, op: Op) -> None:
        b = self.b
        if op.opcode == "for":
            new = ForOp(self._fwd_val(op.operands[0]),
                        self._fwd_val(op.operands[1]),
                        self._fwd_val(op.operands[2]),
                        workshare=op.attrs.get("workshare", False),
                        simd=op.attrs.get("simd", False),
                        nowait=op.attrs.get("nowait", False),
                        ivar_name=op.body.args[0].name)
        else:
            new = WhileOp(ivar_name=op.body.args[0].name)
        b.emit(new)
        self.pm[op.body.args[0]] = new.body.args[0]

        trip_slot = self.plan.slot_for((op, "trip")) \
            if op.opcode == "while" else None
        with b.at(new.body):
            self._enter_dyn_arrays(op)
            self._forward_block(op.body)
            if trip_slot is not None:
                # Store the running trip count (it+1); the last store
                # wins and records the total.
                count = b.add(new.body.args[0], 1)
                buf = self._fwd_slot_buffer(trip_slot)
                idx = self._slot_flat_index(trip_slot,
                                            lambda ba: self._fwd_val(ba))
                b.store(count, buf, idx)
                # Keep the condition op as the body terminator.
                cond_op = None
                for o in list(b.block.ops):
                    if o.opcode == "condition":
                        cond_op = o
                if cond_op is not None:
                    b.block.remove(cond_op)
                    b.block.append(cond_op)
        self._exit_dyn_arrays(op)

    def _enter_dyn_arrays(self, anchor: Op) -> None:
        """At a dynamic loop's body entry: allocate this iteration's
        cache arrays and push them (strategy 3)."""
        b = self.b
        self._dyn_saved = getattr(self, "_dyn_saved", [])
        saved = {}
        for key in self.plan.dyn_groups.get(anchor, []):
            slot = self.plan.slots[key]
            total: Value = Constant(1, I64)
            for dim in slot.dims:
                total = b.mul(total, self._dim_extent_fwd(dim))
            arr = b.alloc(total, slot.elem, space=self.config.cache_space,
                          name=f"dyn{slot.slot_id}")
            arr.op.attrs["stream"] = True
            arr.op.attrs["adcache"] = True
            b.cache_push(self.slot_handles[slot.slot_id], arr)
            saved[slot.slot_id] = self._fwd_dyn_arrays.get(slot.slot_id)
            self._fwd_dyn_arrays[slot.slot_id] = arr
        self._dyn_saved.append(saved)

    def _exit_dyn_arrays(self, anchor: Op) -> None:
        saved = self._dyn_saved.pop()
        for sid, prev in saved.items():
            if prev is None:
                self._fwd_dyn_arrays.pop(sid, None)
            else:
                self._fwd_dyn_arrays[sid] = prev

    def _forward_parallel_region(self, op: Op, new: Op) -> None:
        b = self.b
        b.emit(new)
        for old_arg, new_arg in zip(op.body.args, new.body.args):
            self.pm[old_arg] = new_arg
        with b.at(new.body):
            self._forward_block(op.body)

    def _forward_call(self, op: CallOp) -> None:
        from .mpi_rules import forward_mpi_call
        callee = op.attrs["callee"]
        b = self.b
        if callee.startswith("mpi.") or callee == "task.wait":
            forward_mpi_call(self, op)
            return
        if callee == "jl.gc_preserve_begin":
            ptrs = [self._fwd_val(v) for v in op.operands]
            shadows = []
            for v in op.operands:
                s = self._fwd_shadow_ptr(v)
                if s is not None and s not in ptrs and s not in shadows:
                    shadows.append(s)
            new = CallOp(callee, ptrs + shadows, Token)
            b.emit(new)
            self.pm[op.result] = new.result
            return
        # Generic clone (jl.*, rt.*, pure intrinsics).
        args = [self._fwd_val(v) for v in op.operands]
        new = CallOp(callee, args,
                     op.result.type if op.result else
                     self.module.callee_ret_type(callee),
                     dict(op.attrs))
        b.emit(new)
        if op.result is not None:
            self.pm[op.result] = new.result
            # Pointer-returning intrinsics get shadow twins.
            if callee == "jl.arrayptr" and not self._primal_only:
                base_shadow = self._fwd_shadow_ptr(op.operands[0])
                if base_shadow is not None:
                    tw = CallOp(callee, [base_shadow], op.result.type)
                    b.emit(tw)
                    self.sm[op.result] = tw.result
        self._maybe_cache_result(op)

    def _forward_simple(self, op: Op) -> None:
        b = self.b
        oc = op.opcode
        vmap_args = [self._fwd_val(v) if not isinstance(v, Constant) else v
                     for v in op.operands]
        if oc == "alloc":
            new = AllocOp(vmap_args[0], op.result.type.elem,
                          op.attrs["space"], name=op.result.name)
            b.emit(new)
            self.pm[op.result] = new.result
            if not self._primal_only and self._needs_shadow_buffer(op):
                tw = AllocOp(vmap_args[0], op.result.type.elem,
                             op.attrs["space"],
                             name="d_" + (op.result.name or "buf"))
                b.emit(tw)
                self.sm[op.result] = tw.result
                slot = self.plan.slot_for((op, "shadowptr"))
                if slot is not None:
                    # Persist the shadow pointer to the reverse pass
                    # (non-parallel region-local allocation: anything —
                    # e.g. an MPI shadow request — may have captured it).
                    self._fwd_store_slot(slot, tw.result)
            else:
                self.sm[op.result] = new.result
            return
        if oc == "ptradd":
            new = PtrAddOp(vmap_args[0], vmap_args[1])
            b.emit(new)
            self.pm[op.result] = new.result
            base_shadow = None if self._primal_only else \
                self._fwd_shadow_ptr(op.operands[0])
            if base_shadow is not None:
                tw = PtrAddOp(base_shadow, vmap_args[1])
                b.emit(tw)
                self.sm[op.result] = tw.result
            return
        if oc == "load":
            new = LoadOp(vmap_args[0], vmap_args[1])
            b.emit(new)
            self.pm[op.result] = new.result
            elem = op.result.type
            if not self._primal_only and (isinstance(elem, PointerType)
                                          or elem in (Request, Task)):
                base_shadow = self._fwd_shadow_ptr(op.operands[0])
                if base_shadow is not None:
                    tw = LoadOp(base_shadow, vmap_args[1])
                    b.emit(tw)
                    self.sm[op.result] = tw.result
            if not self._primal_only and op in self.plan.ptr_cached_loads:
                self._fwd_store_slot(self.plan.slots[(op, "pptr")],
                                     new.result)
                shadow = self.sm.get(op.result, new.result)
                self._fwd_store_slot(self.plan.slots[(op, "sptr")], shadow)
            self._maybe_cache_result(op)
            return
        if oc == "store":
            new = StoreOp(vmap_args[0], vmap_args[1], vmap_args[2])
            b.emit(new)
            val = op.operands[0]
            if not self._primal_only and (
                    isinstance(val.type, PointerType)
                    or val.type in (Request, Task)):
                base_shadow = self._fwd_shadow_ptr(op.operands[1])
                shadow_val = self.sm.get(val)
                if base_shadow is not None and shadow_val is not None:
                    b.emit(StoreOp(shadow_val, base_shadow, vmap_args[2]))
            return
        if oc == "atomic":
            b.emit(AtomicRMWOp(op.attrs["kind"], vmap_args[0], vmap_args[1],
                               vmap_args[2]))
            return
        if oc in ("memset", "memcpy", "barrier", "condition"):
            b.emit(op.clone(dict(
                zip(op.operands, vmap_args))))
            return
        if oc in OP_INFO:
            new = ComputeOp(oc, vmap_args, dict(op.attrs))
            b.emit(new)
            self.pm[op.result] = new.result
            self._maybe_cache_result(op)
            return
        raise ADTransformError(f"forward pass cannot handle {op!r}")

    def _needs_shadow_buffer(self, alloc: AllocOp) -> bool:
        elem = alloc.result.type.elem
        if isinstance(elem, PointerType) or elem in (Request, Task, Token):
            return True
        if elem is not F64:
            return False
        return self.activity.origin_active(("alloc", alloc)) or \
            self.activity.all_origins_active

    def _fwd_shadow_ptr(self, ptr: Value) -> Optional[Value]:
        return self.sm.get(ptr)

    def _maybe_cache_result(self, op: Op) -> None:
        if op.result is None or self._primal_only:
            return
        if self.plan.is_cached(op.result):
            slot = self.plan.slots[op.result]
            self._fwd_store_slot(slot, self.pm[op.result])

    # ==================================================================
    # REVERSE pass
    # ==================================================================
    def _reverse_block(self, block: Block, scope: _Scope) -> None:
        b = self.b
        # Fresh zeroed shadows for allocations local to *parallel*
        # regions (per-lane scratch; shadow state cannot escape a
        # parallel iteration).  Non-parallel region-local allocs reuse
        # the forward shadow through the (op, "shadowptr") cache.
        for op in block.ops:
            if op.opcode == "alloc" and block.parent_op is not None:
                if self._needs_shadow_buffer(op) and \
                        self.plan.slot_for((op, "shadowptr")) is None:
                    count = self._avail(op.operands[0], scope)
                    fresh = AllocOp(count, op.result.type.elem,
                                    op.attrs["space"],
                                    name="r_" + (op.result.name or "buf"))
                    b.emit(fresh)
                    scope.bind(("freshshadow", op), fresh.result)

        for op in reversed(block.ops):
            self._reverse_op(op, scope)

    def _reverse_op(self, op: Op, scope: _Scope) -> None:
        b = self.b
        oc = op.opcode
        if oc in ("alloc", "free", "ptradd", "condition", "cache_create",
                  "cache_push", "cache_pop"):
            return
        if oc == "return":
            return
        if oc in ZERO_DERIVATIVE:
            return
        if oc in OP_INFO:
            self._reverse_compute(op, scope)
            return
        if oc == "load":
            self._reverse_load(op, scope)
            return
        if oc == "store":
            self._reverse_store(op, scope)
            return
        if oc == "atomic":
            self._reverse_atomic(op, scope)
            return
        if oc == "memset":
            self._reverse_memset(op, scope)
            return
        if oc == "memcpy":
            self._reverse_memcpy(op, scope)
            return
        if oc == "if":
            cond = self._avail(op.operands[0], scope)
            new = IfOp(cond)
            b.emit(new)
            with b.at(new.then_body):
                self._reverse_block(op.then_body, _Scope(
                    scope, op, new.then_body, new))
            with b.at(new.else_body):
                self._reverse_block(op.else_body, _Scope(
                    scope, op, new.else_body, new))
            return
        if oc == "for":
            m = self.managed.get(op)
            if m is not None:
                m[0].emit_reverse_sweep(self, op, scope)
            else:
                self._reverse_for(op, scope)
            return
        if oc == "while":
            self._reverse_while(op, scope)
            return
        if oc == "parallel_for":
            self._reverse_parallel_for(op, scope)
            return
        if oc == "fork":
            self._reverse_fork(op, scope)
            return
        if oc == "spawn":
            self._reverse_spawn(op, scope)
            return
        if oc == "barrier":
            b.barrier()
            return
        if oc == "call":
            self._reverse_call(op, scope)
            return
        raise ADTransformError(f"reverse pass cannot handle {op!r}")

    # --- compute adjoints ---------------------------------------------
    def _reverse_compute(self, op: Op, scope: _Scope) -> None:
        r = op.result
        if r is None or r.type is not F64:
            return
        if not self.activity.value_active(r):
            return
        adj = self._adj_read(r, scope)
        if adj is None:
            return
        rule = RULES.get(op.opcode)
        if rule is None:
            raise ADTransformError(
                f"no adjoint rule for opcode {op.opcode!r}")

        act = self.activity

        def active(i: int) -> bool:
            o = op.operands[i]
            return (o.type is F64 and not isinstance(o, Constant)
                    and act.value_active(o))

        av = lambda v: self._avail(v, scope)  # noqa: E731
        for i, contrib in rule.emit(self.b, op, adj, av, active):
            self._adj_accum(op.operands[i], contrib, scope)

    # --- memory adjoints -------------------------------------------------
    def _collect_mpi_buffers(self) -> list:
        """Pointer operands of ``mpi.*`` calls in the working copy.

        Their shadows participate in adjoint message exchange, so the
        ``atomic_everywhere`` ablation must keep their increments atomic
        even outside fork regions (see :func:`repro.ad.tls.increment_kind`).
        """
        bufs = []
        for o in self.fn.walk():
            if o.opcode == "call" and o.attrs.get("callee",
                                                  "").startswith("mpi."):
                bufs.extend(v for v in o.operands
                            if isinstance(v.type, PointerType))
        return bufs

    def _escapes_mpi(self, ptr: Value) -> bool:
        return any(self.aliasing.may_alias(ptr, mb)
                   for mb in self._mpi_buffers)

    def _reverse_load(self, op: LoadOp, scope: _Scope) -> None:
        b = self.b
        elem = op.result.type
        if elem in (Request, Task):
            # Reverse-flow handle shadow: store the reverse record/task
            # into the shadow slot for the matching reverse store to pick
            # up (Fig. 5's shadow-request mechanism).
            rr = scope.lookup(("revshadow", op.result))
            if rr is not None:
                sp = self._rev_shadow_ptr(op.operands[0], scope)
                b.emit(StoreOp(rr, sp, self._avail(op.operands[1], scope)))
            return
        if elem is not F64 or not self.activity.value_active(op.result):
            return
        adj = self._adj_read(op.result, scope)
        if adj is None:
            return
        sp = self._rev_shadow_ptr(op.operands[0], scope)
        idx = self._avail(op.operands[1], scope)
        region, ivars = parallel_context(op)
        kind = increment_kind(op.operands[0], op.operands[1], ivars,
                              self.aliasing, region,
                              atomic_everywhere=self.config.atomic_everywhere,
                              mpi_escapes=self._escapes_mpi(op.operands[0]))
        if self.config.force_increment_kind is not None and region is not None:
            kind = self.config.force_increment_kind
            if kind not in (SERIAL, ATOMIC, REDUCTION):
                raise ValueError(
                    f"force_increment_kind={kind!r}; expected one of "
                    f"{SERIAL!r}, {ATOMIC!r}, {REDUCTION!r}")
        self._emit_increment(kind, adj, sp, idx)

    def _emit_increment(self, kind: str, adj: Value, sp: Value,
                        idx: Value) -> None:
        b = self.b
        if kind == SERIAL:
            cur = b.load(sp, idx)
            b.store(b.add(cur, adj), sp, idx)
        elif kind == REDUCTION:
            o = AtomicRMWOp("add", adj, sp, idx)
            o.attrs["via"] = "reduction"
            b.emit(o)
        else:
            b.atomic_add(adj, sp, idx)

    def _reverse_store(self, op: StoreOp, scope: _Scope) -> None:
        b = self.b
        val = op.operands[0]
        if isinstance(val.type, PointerType):
            return  # pointer structure mirrored in forward shadow twins
        if val.type in (Request, Task):
            sp = self._rev_shadow_ptr(op.operands[1], scope)
            ld = LoadOp(sp, self._avail(op.operands[2], scope))
            b.emit(ld)
            scope.bind(("revshadow", val), ld.result)
            return
        if val.type is not F64:
            return
        if not self.activity.ptr_active(op.operands[1], self.aliasing):
            return
        sp = self._rev_shadow_ptr(op.operands[1], scope)
        idx = self._avail(op.operands[2], scope)
        val_active = (not isinstance(val, Constant)
                      and self.activity.value_active(val))
        if val_active:
            cur = b.load(sp, idx)
        b.store(0.0, sp, idx)
        if val_active:
            self._adj_accum(val, cur, scope)

    def _reverse_atomic(self, op: AtomicRMWOp, scope: _Scope) -> None:
        if op.attrs["kind"] != "add":
            raise ADTransformError(
                "reverse of atomic min/max is not supported; use the "
                "explicit compare-select reduction pattern (paper Fig. 7)")
        val = op.operands[0]
        if isinstance(val, Constant) or not self.activity.value_active(val):
            return
        sp = self._rev_shadow_ptr(op.operands[1], scope)
        idx = self._avail(op.operands[2], scope)
        cur = self.b.load(sp, idx)
        self._adj_accum(val, cur, scope)

    def _reverse_memset(self, op: MemsetOp, scope: _Scope) -> None:
        b = self.b
        if op.operands[0].type.elem is not F64:
            return
        if not self.activity.ptr_active(op.operands[0], self.aliasing):
            return
        val = op.operands[1]
        if not isinstance(val, Constant) and self.activity.value_active(val):
            raise ADTransformError(
                "memset with an active fill value is not supported")
        sp = self._rev_shadow_ptr(op.operands[0], scope)
        count = self._avail(op.operands[2], scope)
        b.memset(sp, 0.0, count)

    def _reverse_memcpy(self, op: Op, scope: _Scope) -> None:
        b = self.b
        if op.operands[0].type.elem is not F64:
            return
        if not self.activity.ptr_active(op.operands[0], self.aliasing):
            return
        d_dst = self._rev_shadow_ptr(op.operands[0], scope)
        count = self._avail(op.operands[2], scope)
        src_active = self.activity.ptr_active(op.operands[1], self.aliasing)
        if src_active:
            d_src = self._rev_shadow_ptr(op.operands[1], scope)
            with b.for_(0, count, simd=True, name="k") as k:
                t = b.load(d_dst, k)
                b.store(0.0, d_dst, k)
                cur = b.load(d_src, k)
                b.store(b.add(cur, t), d_src, k)
        else:
            b.memset(d_dst, 0.0, count)

    # --- control flow ----------------------------------------------------
    def _reverse_for(self, op: ForOp, scope: _Scope) -> None:
        b = self.b
        lb = self._avail(op.operands[0], scope)
        ub = self._avail(op.operands[1], scope)
        step = self._avail(op.operands[2], scope)
        if op.attrs.get("workshare"):
            # Same chunks, each thread's chunk iterated in reverse order
            # (§VI-A2: possible at the compiler level, not in OpenMP).
            if not op.attrs.get("nowait"):
                b.barrier()
            new = ForOp(lb, ub, step, workshare=True,
                        simd=op.attrs.get("simd", False),
                        nowait=op.attrs.get("nowait", False),
                        ivar_name="r" + op.body.args[0].name)
            new.attrs["reverse_order"] = True
            b.emit(new)
            inner = _Scope(scope, op, new.body, new)
            inner.bind(op.body.args[0], new.body.args[0])
            self.rev_parallel_stack.append(op)
            try:
                with b.at(new.body):
                    self._reverse_block(op.body, inner)
            finally:
                self.rev_parallel_stack.pop()
            return
        # Serial loop: iterate reversed.
        ntrips = b.idiv(b.add(b.max(b.sub(ub, lb), 0), b.sub(step, 1)), step)
        new = ForOp(Constant(0, I64), ntrips, Constant(1, I64),
                    ivar_name="rk")
        b.emit(new)
        inner = _Scope(scope, op, new.body, new)
        with b.at(new.body):
            k = new.body.args[0]
            i_rev = b.add(lb, b.mul(b.sub(b.sub(ntrips, 1), k), step))
            inner.bind(op.body.args[0], i_rev)
            self._pop_dyn_arrays(op, inner)
            self._reverse_block(op.body, inner)

    def _reverse_while(self, op: WhileOp, scope: _Scope) -> None:
        b = self.b
        trip_slot = self.plan.slot_for((op, "trip"))
        count = self._load_slot(trip_slot, scope)
        new = ForOp(Constant(0, I64), count, Constant(1, I64), ivar_name="rw")
        b.emit(new)
        inner = _Scope(scope, op, new.body, new)
        with b.at(new.body):
            k = new.body.args[0]
            it_rev = b.sub(b.sub(count, 1), k)
            inner.bind(op.body.args[0], it_rev)
            self._pop_dyn_arrays(op, inner)
            self._reverse_block(op.body, inner)

    # ==================================================================
    # Managed adjoint strategies (repro.ad.strategy)
    # ==================================================================
    def _run_primal_only(self, block: Block) -> None:
        """Re-emit ``block`` cloning primal ops only (no shadow twins,
        no cache stores) — the recompute segments of checkpoint and
        implicit adjoints."""
        prev = self._primal_only
        self._primal_only = True
        try:
            self._forward_block(block)
        finally:
            self._primal_only = prev

    def _buflen(self, p: Value) -> Value:
        # Emitted directly (not via builder.call) because the state
        # pointer's element type varies per buffer.
        cl = CallOp("rt.buflen", [p], I64)
        self.b.emit(cl)
        return cl.result

    def _managed_trip_bounds(self, op: ForOp):
        """(lb, ub, step, ntrips) forward values of a managed loop."""
        b = self.b
        lb = self._fwd_val(op.operands[0])
        ub = self._fwd_val(op.operands[1])
        step = self._fwd_val(op.operands[2])
        ntrips = b.idiv(b.add(b.max(b.sub(ub, lb), 0), b.sub(step, 1)), step)
        return lb, ub, step, ntrips

    def _managed_state(self, op: ForOp, nslots: Optional[Value],
                       name: str) -> list:
        """Allocate snapshot storage for the loop-carried state of a
        managed loop: ``nslots`` stacked copies of each state buffer
        (None: a single copy).  Returns [(primal ptr, len, snap), ...]."""
        b = self.b
        _, plan = self.managed[op]
        state = []
        for v in plan.state:
            p = self._fwd_val(v)
            n = self._buflen(p)
            total = n if nslots is None else b.mul(n, nslots)
            snap = b.alloc(total, v.type.elem, space=self.config.cache_space,
                           name=name)
            snap.op.attrs["stream"] = True
            snap.op.attrs["adcache"] = True
            state.append((p, n, snap))
        return state

    def _ckpt_snapshot(self, rec: dict, slot_idx: Value) -> None:
        b = self.b
        for p, n, snap in rec["state"]:
            b.memcpy(b.ptradd(snap, b.mul(slot_idx, n)), p, n)

    def _ckpt_restore(self, rec: dict, slot_idx: Value) -> None:
        b = self.b
        for p, n, snap in rec["state"]:
            b.memcpy(p, b.ptradd(snap, b.mul(slot_idx, n)), n)

    def _ckpt_forward_loop(self, op: ForOp) -> None:
        """Checkpointed forward sweep: snapshot the incoming state, run
        the loop primal-only, then snapshot the final state.  Keeps
        ``ceil(log2 N) + 2`` snapshot slots live instead of O(N)
        per-iteration caches (the extra slot holds the final state the
        reverse sweep restores at the end, so the primal buffers finish
        bit-identical to the cache-all plan)."""
        b = self.b
        lb, ub, step, ntrips = self._managed_trip_bounds(op)
        # nslots = ceil(log2(max(N, 1))) + 1, as a runtime value: the
        # select chain computes nbits = position of the highest bit
        # needed to cover N (trip counts are i64, so 62 bits suffice).
        nbits: Value = Constant(1, I64)
        for bit in range(62):
            nbits = b.select(b.cmp("gt", ntrips, 1 << bit),
                             Constant(bit + 1, I64), nbits)
        nslots = b.add(nbits, 1)
        # Slot `nslots` (one past the stack's peak depth) holds the
        # final state.
        rec = {"lb": lb, "step": step, "ntrips": ntrips, "nslots": nslots,
               "final_slot": nslots,
               "state": self._managed_state(op, b.add(nslots, 1), "ckpt")}
        self._ckpt[op] = rec
        self._ckpt_snapshot(rec, Constant(0, I64))
        new = ForOp(lb, ub, step, ivar_name=op.body.args[0].name)
        b.emit(new)
        self.pm[op.body.args[0]] = new.body.args[0]
        with b.at(new.body):
            self._run_primal_only(op.body)
        self._ckpt_snapshot(rec, nslots)

    def _ckpt_reverse_loop(self, op: ForOp, scope: _Scope) -> None:
        """Reverse sweep of a checkpointed loop: an iterative stack
        machine over [lo, hi) segments (trip-index space).  Invariant:
        the stack entry at position j has its segment-start state in
        snapshot slot j.  A width-1 segment "youturns": restore, re-run
        that iteration augmented (with single-iteration caching), then
        reverse it.  A wider segment splits at its midpoint: advance the
        primal to mid, snapshot, push [mid, hi).  Exactly 2N-1 machine
        iterations reverse the trips in order N-1 .. 0 with O(N log N)
        total recompute (see strategy.simulate_schedule)."""
        b = self.b
        rec = self._ckpt[op]
        ntrips = rec["ntrips"]
        lo_arr = b.alloc(rec["nslots"], I64, name="ck_lo")
        hi_arr = b.alloc(rec["nslots"], I64, name="ck_hi")
        sp = b.alloc(1, I64, name="ck_sp")
        b.store(0, lo_arr, 0)
        b.store(ntrips, hi_arr, 0)
        b.store(1, sp, 0)
        total = b.max(b.sub(b.mul(ntrips, 2), 1), 0)
        machine = ForOp(Constant(0, I64), total, Constant(1, I64),
                        ivar_name="ckm")
        b.emit(machine)
        with b.at(machine.body):
            top = b.sub(b.load(sp, 0), 1)
            lo = b.load(lo_arr, top)
            hi = b.load(hi_arr, top)
            iff = IfOp(b.cmp("le", b.sub(hi, lo), 1))
            b.emit(iff)
            with b.at(iff.then_body):
                # Youturn: reverse the single iteration `lo` and pop.
                self._ckpt_restore(rec, top)
                ivar = b.add(rec["lb"], b.mul(lo, rec["step"]))
                self.pm[op.body.args[0]] = ivar
                self._forward_block(op.body)
                inner = _Scope(scope, op, iff.then_body, machine)
                inner.bind(op.body.args[0], ivar)
                self._reverse_block(op.body, inner)
                b.store(top, sp, 0)
            with b.at(iff.else_body):
                # Split: advance the primal over [lo, mid), snapshot at
                # mid, and push the [mid, hi) segment.
                mid = b.add(lo, b.idiv(b.sub(hi, lo), 2))
                self._ckpt_restore(rec, top)
                adv = ForOp(lo, mid, Constant(1, I64), ivar_name="ckj")
                b.emit(adv)
                with b.at(adv.body):
                    self.pm[op.body.args[0]] = b.add(
                        rec["lb"], b.mul(adv.body.args[0], rec["step"]))
                    self._run_primal_only(op.body)
                spv = b.load(sp, 0)
                self._ckpt_snapshot(rec, spv)
                b.store(mid, hi_arr, top)
                b.store(mid, lo_arr, spv)
                b.store(hi, hi_arr, spv)
                b.store(b.add(spv, 1), sp, 0)
        # The machine leaves the primal at iteration 0's recompute
        # point; restore the final state so the caller-visible buffers
        # match the cache-all plan bit for bit.
        self._ckpt_restore(rec, rec["final_slot"])

    def _implicit_forward_loop(self, op: ForOp) -> None:
        """Implicit-adjoint forward sweep: run the fixed-point loop
        primal-only and snapshot the *final* (converged) state once."""
        b = self.b
        lb, ub, step, ntrips = self._managed_trip_bounds(op)
        rec = {"lb": lb, "step": step, "ntrips": ntrips,
               "state": self._managed_state(op, None, "fixpt")}
        self._ckpt[op] = rec
        new = ForOp(lb, ub, step, ivar_name=op.body.args[0].name)
        b.emit(new)
        self.pm[op.body.args[0]] = new.body.args[0]
        with b.at(new.body):
            self._run_primal_only(op.body)
        for p, n, snap in rec["state"]:
            b.memcpy(snap, p, n)
        # The reverse Neumann rounds re-run the body as the *last*
        # primal iteration (any index works at a true fixed point; the
        # last one makes implicit_iters = N match unrolling exactly).
        rec["last_ivar"] = b.add(
            lb, b.mul(b.max(b.sub(ntrips, 1), 0), step))

    def _implicit_reverse_loop(self, op: ForOp, scope: _Scope) -> None:
        """Implicit-function-theorem reverse sweep: iterate the adjoint
        map at the frozen fixed point.  Each round restores the
        converged state, re-runs one augmented body step, and reverses
        it — the shadow state becomes (J^T)^k x̄ while parameter
        adjoints accumulate Σ_k (∂f/∂θ)^T (J^T)^k x̄, the Neumann series
        of (I - J^T)^{-1} x̄."""
        b = self.b
        rec = self._ckpt[op]
        iters = self.config.implicit_iters
        count = Constant(iters, I64) if iters is not None else rec["ntrips"]
        new = ForOp(Constant(0, I64), count, Constant(1, I64),
                    ivar_name="nk")
        b.emit(new)
        with b.at(new.body):
            for p, n, snap in rec["state"]:
                b.memcpy(p, snap, n)
            ivar = rec["last_ivar"]
            self.pm[op.body.args[0]] = ivar
            self._forward_block(op.body)
            inner = _Scope(scope, op, new.body, new)
            inner.bind(op.body.args[0], ivar)
            self._reverse_block(op.body, inner)
        # Leave the primal at the converged state (each round advanced
        # it one step past the snapshot).
        for p, n, snap in rec["state"]:
            b.memcpy(p, snap, n)

    def _pop_dyn_arrays(self, anchor: Op, scope: _Scope) -> None:
        b = self.b
        for key in reversed(self.plan.dyn_groups.get(anchor, [])):
            slot = self.plan.slots[key]
            arr = b.cache_pop(self.slot_handles[slot.slot_id],
                              Ptr(slot.elem))
            scope.bind(("dynarr", slot.slot_id), arr)

    def _reverse_parallel_for(self, op: ParallelForOp, scope: _Scope) -> None:
        b = self.b
        lb = self._avail(op.operands[0], scope)
        ub = self._avail(op.operands[1], scope)
        new = ParallelForOp(lb, ub,
                            framework=op.attrs.get("framework", "openmp"),
                            ivar_name="r" + op.body.args[0].name)
        b.emit(new)
        inner = _Scope(scope, op, new.body, new)
        inner.bind(op.body.args[0], new.body.args[0])
        self.rev_parallel_stack.append(op)
        try:
            with b.at(new.body):
                self._reverse_block(op.body, inner)
        finally:
            self.rev_parallel_stack.pop()

    def _reverse_fork(self, op: ForkOp, scope: _Scope) -> None:
        b = self.b
        nt = self._avail(op.operands[0], scope)
        new = ForkOp(nt, framework=op.attrs.get("framework", "openmp"))
        b.emit(new)
        inner = _Scope(scope, op, new.body, new)
        inner.bind(op.body.args[0], new.body.args[0])
        inner.bind(op.body.args[1], new.body.args[1])
        self.rev_parallel_stack.append(op)
        try:
            with b.at(new.body):
                self._reverse_block(op.body, inner)
        finally:
            self.rev_parallel_stack.pop()

    def _reverse_spawn(self, op: SpawnOp, scope: _Scope) -> None:
        rr = scope.lookup(("revshadow", op.result))
        if rr is None:
            # Task never waited on: no adjoint work was spawned.
            return
        self.b.call("task.wait", rr)

    # --- calls -------------------------------------------------------------
    def _reverse_call(self, op: CallOp, scope: _Scope) -> None:
        from .mpi_rules import reverse_mpi_call
        b = self.b
        callee = op.attrs["callee"]
        if callee.startswith("mpi."):
            reverse_mpi_call(self, op, scope)
            return
        if callee == "task.wait":
            spawn_op, pairs = self._spawn_of_wait[op]
            new = SpawnOp(framework=spawn_op.attrs.get("framework", "julia"))
            b.emit(new)
            inner = _Scope(scope, spawn_op, new.body, new)
            for s_iv, w_iv in pairs:
                bound = self._avail(w_iv, scope)
                inner.bind(s_iv, bound)
            self.rev_parallel_stack.append(spawn_op)
            try:
                with b.at(new.body):
                    self._reverse_block(spawn_op.body, inner)
            finally:
                self.rev_parallel_stack.pop()
            scope.bind(("revshadow", op.operands[0]), new.result)
            return
        if callee == "jl.gc_preserve_end":
            tok = op.operands[0]
            src = tok.op  # gc_preserve_begin
            ptrs = []
            for v in src.operands:
                pv = self._rev_primal_ptr(v, scope)
                if pv is not None:
                    ptrs.append(pv)
                sv = self._rev_shadow_ptr_or_none(v, scope)
                if sv is not None and sv not in ptrs:
                    ptrs.append(sv)
            new = CallOp("jl.gc_preserve_begin", ptrs, Token)
            b.emit(new)
            scope.bind(("revtok", src), new.result)
            return
        if callee == "jl.gc_preserve_begin":
            rtok = scope.lookup(("revtok", op))
            if rtok is not None:
                b.call("jl.gc_preserve_end", rtok)
            return
        if callee in ("jl.safepoint",):
            b.call("jl.safepoint")
            return
        # Pure / diagnostic intrinsics: nothing to reverse.
        return

    # ==================================================================
    # Availability machinery
    # ==================================================================
    def _avail(self, v: Value, scope: _Scope) -> Value:
        if isinstance(v, Constant):
            return v
        bound = scope.lookup(("avail", v))
        if bound is not None:
            return bound
        if isinstance(v, (Argument,)):
            return self.arg_map[v]
        if isinstance(v, BlockArg):
            direct = scope.lookup(v)
            if direct is not None:
                return direct
            raise ADTransformError(f"induction value {v!r} is not bound in "
                                   f"this reverse scope")
        res = self.plan.resolution.get(v)
        if res is None or res == "free":
            if depth_of(v) == 0:
                return self.pm[v]
            raise ADTransformError(
                f"value {v!r} needed in reverse but not planned "
                f"(planner bug)")
        # Hoist the cache load / rematerialization to the outermost
        # reverse scope where it is valid (the scope mirroring the
        # innermost primal loop containing the definition) — otherwise a
        # pose-level value would be recomputed once per inner-loop
        # iteration of the reverse sweep.
        target = self._hoist_target(v, scope)
        with self._emit_hoisted(target, scope):
            if res == "cache":
                out = self._load_slot(self.plan.slots[v], target)
            else:
                out = self._emit_recompute(v.op, target)
        target.bind(("avail", v), out)
        return out

    _HOISTABLE_REGIONS = ("for", "parallel_for", "while", "fork")

    def _hoist_target(self, v: Value, scope: _Scope) -> _Scope:
        op = v.op if isinstance(v, Result) else None
        if op is None:
            return scope
        nest = set(nest_of(op))
        s = scope
        while (s.parent is not None and s.region_op is not None
               and s.region_op.opcode in self._HOISTABLE_REGIONS
               and s.region_op not in nest):
            s = s.parent
        return s

    import contextlib as _ctx

    @_ctx.contextmanager
    def _emit_hoisted(self, target: _Scope, current: _Scope):
        if target is current:
            yield
            return
        s = current
        while s.parent is not target:
            s = s.parent
        anchor = s.anchor_op
        tmp = Block()
        with self.b.at(tmp):
            yield
        at = target.block.ops.index(anchor)
        for o in tmp.ops:
            o.parent = target.block
            target.block.ops.insert(at, o)
            at += 1

    def _load_slot(self, slot: CacheSlot, scope: _Scope) -> Value:
        b = self.b
        if slot.dyn_anchor is not None:
            buf = scope.lookup(("dynarr", slot.slot_id))
            if buf is None:
                raise ADTransformError(
                    f"dynamic cache array {slot.slot_id} not popped in "
                    f"this reverse scope")
        else:
            buf = self.slot_buffers[slot.slot_id]
        idx = self._slot_flat_index(
            slot, lambda ba: self._avail_ivar(ba, scope))
        ld = LoadOp(buf, idx)
        b.emit(ld)
        return ld.result

    def _avail_ivar(self, ba: BlockArg, scope: _Scope) -> Value:
        bound = scope.lookup(ba)
        if bound is None:
            raise ADTransformError(
                f"loop index {ba!r} not bound in reverse scope")
        return bound

    def _emit_recompute(self, op: Op, scope: _Scope) -> Value:
        b = self.b
        oc = op.opcode
        if oc in OP_INFO:
            args = [self._avail(o, scope) for o in op.operands]
            new = ComputeOp(oc, args, dict(op.attrs))
            b.emit(new)
            return new.result
        if oc == "load":
            ptr = self._rev_primal_ptr(op.operands[0], scope)
            idx = self._avail(op.operands[1], scope)
            new = LoadOp(ptr, idx)
            b.emit(new)
            return new.result
        if oc == "call":
            args = [self._avail(o, scope) for o in op.operands]
            new = CallOp(op.attrs["callee"], args, op.result.type,
                         dict(op.attrs))
            b.emit(new)
            return new.result
        raise ADTransformError(f"cannot recompute {op!r}")

    # --- pointer re-derivation ------------------------------------------
    def _rev_primal_ptr(self, ptr: Value, scope: _Scope) -> Value:
        if isinstance(ptr, Argument):
            return self.arg_map[ptr]
        key = ("pptr", ptr)
        bound = scope.lookup(key)
        if bound is not None:
            return bound
        op = ptr.op
        b = self.b
        if op.opcode == "alloc":
            if depth_of(ptr) == 0:
                out = self.pm[ptr]
            else:
                raise ADTransformError(
                    "primal pointer to a region-local allocation is not "
                    "available in the reverse pass")
        elif op.opcode == "ptradd":
            out = b.ptradd(self._rev_primal_ptr(op.operands[0], scope),
                           self._avail(op.operands[1], scope))
        elif op.opcode == "load":
            if op in self.plan.ptr_cached_loads:
                out = self._load_slot(self.plan.slots[(op, "pptr")], scope)
            else:
                new = LoadOp(self._rev_primal_ptr(op.operands[0], scope),
                             self._avail(op.operands[1], scope))
                b.emit(new)
                out = new.result
        elif op.opcode == "call" and op.attrs["callee"] == "jl.arrayptr":
            new = CallOp("jl.arrayptr",
                         [self._rev_primal_ptr(op.operands[0], scope)],
                         op.result.type)
            b.emit(new)
            out = new.result
        else:
            raise ADTransformError(f"cannot re-derive pointer from {op!r}")
        scope.bind(key, out)
        return out

    def _rev_shadow_ptr(self, ptr: Value, scope: _Scope) -> Value:
        out = self._rev_shadow_ptr_or_none(ptr, scope)
        if out is None:
            raise ADTransformError(f"no shadow derivation for {ptr!r}")
        return out

    def _rev_shadow_ptr_or_none(self, ptr: Value,
                                scope: _Scope) -> Optional[Value]:
        if isinstance(ptr, Argument):
            return self.shadow_arg_map.get(ptr, self.arg_map[ptr])
        key = ("sptr", ptr)
        bound = scope.lookup(key)
        if bound is not None:
            return bound
        op = ptr.op
        b = self.b
        if op.opcode == "alloc":
            slot = self.plan.slot_for((op, "shadowptr"))
            fresh = scope.lookup(("freshshadow", op))
            if slot is not None:
                out = self._load_slot(slot, scope)
            elif fresh is not None:
                out = fresh
            elif depth_of(ptr) == 0:
                out = self.sm[ptr]
            else:
                raise ADTransformError(
                    f"shadow of region-local alloc {op!r} missing")
        elif op.opcode == "ptradd":
            out = b.ptradd(self._rev_shadow_ptr(op.operands[0], scope),
                           self._avail(op.operands[1], scope))
        elif op.opcode == "load":
            if op in self.plan.ptr_cached_loads:
                out = self._load_slot(self.plan.slots[(op, "sptr")], scope)
            else:
                new = LoadOp(self._rev_shadow_ptr(op.operands[0], scope),
                             self._avail(op.operands[1], scope))
                b.emit(new)
                out = new.result
        elif op.opcode == "call" and op.attrs["callee"] == "jl.arrayptr":
            new = CallOp("jl.arrayptr",
                         [self._rev_shadow_ptr(op.operands[0], scope)],
                         op.result.type)
            b.emit(new)
            out = new.result
        else:
            return None
        scope.bind(key, out)
        return out

    # ==================================================================
    # Adjoint accumulation
    # ==================================================================
    def _adj_read(self, v: Value, scope: _Scope) -> Optional[Value]:
        storage = self.adj_storage.get(v)
        if storage == "ssa" or storage is None:
            return scope.lookup(("adj", v))
        if storage == "active-cell":
            return self.b.load(self._active_cell, 0)
        slot = self.adj_slots[v]
        b = self.b
        buf = self.slot_buffers[slot.slot_id]
        idx = self._slot_flat_index(
            slot, lambda ba: self._avail_ivar(ba, scope))
        out = b.load(buf, idx)
        b.store(0.0, buf, idx)  # reset for reuse across serial iterations
        return out

    def _adj_accum(self, v: Value, contrib: Value, scope: _Scope) -> None:
        if isinstance(v, Constant) or v.type is not F64:
            return
        if isinstance(v, Argument):
            if v is self._active_scalar:
                kind = SERIAL if not self.rev_parallel_stack else (
                    ATOMIC if self.config.atomic_everywhere else REDUCTION)
                self._emit_increment(kind, contrib, self._active_cell,
                                     Constant(0, I64))
            return
        if isinstance(v, BlockArg):
            return
        if not self.activity.value_active(v):
            return
        storage = self.adj_storage.get(v, "ssa")
        if storage == "ssa":
            cur = scope.lookup(("adj", v))
            if cur is None:
                scope.bind(("adj", v), contrib)
            else:
                scope.bind(("adj", v), self.b.add(cur, contrib))
            return
        # Slot storage.
        slot = self.adj_slots[v]
        buf = self.slot_buffers[slot.slot_id]
        idx = self._slot_flat_index(
            slot, lambda ba: self._avail_ivar(ba, scope))
        kind = self._slot_increment_kind(slot)
        self._emit_increment(kind, contrib, buf, idx)

    def _slot_increment_kind(self, slot: CacheSlot) -> str:
        if not self.rev_parallel_stack:
            return SERIAL
        innermost = self.rev_parallel_stack[-1]
        if innermost in slot.dims:
            return SERIAL
        if self.config.atomic_everywhere:
            return ATOMIC
        return REDUCTION
