"""Per-opcode adjoint rules for arithmetic instructions.

Each rule provides two views used by the two AD phases:

* ``deps(op, active)`` — which *primal* values the adjoint needs
  (consumed by the cache planner, §IV-C);
* ``emit(b, op, adj, av, active)`` — build the partial-derivative
  contributions in the reverse pass, where ``av(v)`` resolves a primal
  value to something available at the reverse program point (the
  forward clone's SSA value, a cache load, or a rematerialization).

The four-step model of §IV — load shadow, compute partials, multiply,
increment operand shadows — is realized by the transform driver; rules
only implement steps 2–3 (partial × adjoint) per operand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..ir.types import F64
from ..ir.values import Value


@dataclass(frozen=True)
class AdjointRule:
    #: primal values needed, given a predicate telling which operands
    #: are active.
    deps: Callable
    #: emit partial contributions: list of (operand_index, Value).
    emit: Callable


def _float_operands(op):
    return [(i, v) for i, v in enumerate(op.operands) if v.type is F64]


RULES: dict[str, AdjointRule] = {}


def _rule(opcode):
    def deco(cls_fns):
        deps, emit = cls_fns()
        RULES[opcode] = AdjointRule(deps, emit)
        return cls_fns
    return deco


# --- linear ops: no primal deps ------------------------------------------

def _no_deps(op, active):
    return []


RULES["add"] = AdjointRule(
    _no_deps,
    lambda b, op, adj, av, active: [(i, adj) for i in (0, 1) if active(i)])

RULES["sub"] = AdjointRule(
    _no_deps,
    lambda b, op, adj, av, active:
        ([(0, adj)] if active(0) else []) +
        ([(1, b.neg(adj))] if active(1) else []))

RULES["neg"] = AdjointRule(
    _no_deps,
    lambda b, op, adj, av, active: [(0, b.neg(adj))] if active(0) else [])


# --- bilinear / nonlinear --------------------------------------------------

def _mul_deps(op, active):
    deps = []
    if active(0):
        deps.append(op.operands[1])
    if active(1):
        deps.append(op.operands[0])
    return deps


def _mul_emit(b, op, adj, av, active):
    out = []
    if active(0):
        out.append((0, b.mul(adj, av(op.operands[1]))))
    if active(1):
        out.append((1, b.mul(adj, av(op.operands[0]))))
    return out


RULES["mul"] = AdjointRule(_mul_deps, _mul_emit)


def _div_deps(op, active):
    deps = []
    if active(0) or active(1):
        deps.append(op.operands[1])
    if active(1):
        deps.append(op.operands[0])
    return deps


def _div_emit(b, op, adj, av, active):
    out = []
    y = av(op.operands[1]) if (active(0) or active(1)) else None
    if active(0):
        out.append((0, b.div(adj, y)))
    if active(1):
        x = av(op.operands[0])
        out.append((1, b.neg(b.div(b.mul(adj, x), b.mul(y, y)))))
    return out


RULES["div"] = AdjointRule(_div_deps, _div_emit)


def _fma_deps(op, active):
    deps = []
    if active(0):
        deps.append(op.operands[1])
    if active(1):
        deps.append(op.operands[0])
    return deps


def _fma_emit(b, op, adj, av, active):
    out = []
    if active(0):
        out.append((0, b.mul(adj, av(op.operands[1]))))
    if active(1):
        out.append((1, b.mul(adj, av(op.operands[0]))))
    if active(2):
        out.append((2, adj))
    return out


RULES["fma"] = AdjointRule(_fma_deps, _fma_emit)


def _minmax(opcode, pred):
    def deps(op, active):
        if active(0) or active(1):
            return [op.operands[0], op.operands[1]]
        return []

    def emit(b, op, adj, av, active):
        x, y = av(op.operands[0]), av(op.operands[1])
        chooses_x = b.cmp(pred, x, y)
        zero = b.const(0.0)
        out = []
        if active(0):
            out.append((0, b.select(chooses_x, adj, zero)))
        if active(1):
            out.append((1, b.select(chooses_x, zero, adj)))
        return out

    RULES[opcode] = AdjointRule(deps, emit)


_minmax("min", "le")
_minmax("max", "ge")


def _select_deps(op, active):
    if active(1) or active(2):
        return [op.operands[0]]
    return []


def _select_emit(b, op, adj, av, active):
    c = av(op.operands[0])
    zero = b.const(0.0)
    out = []
    if active(1):
        out.append((1, b.select(c, adj, zero)))
    if active(2):
        out.append((2, b.select(c, zero, adj)))
    return out


RULES["select"] = AdjointRule(_select_deps, _select_emit)


# --- unary nonlinear --------------------------------------------------------

def _unary(opcode, deps_of, emit_fn):
    def deps(op, active):
        return deps_of(op) if active(0) else []

    def emit(b, op, adj, av, active):
        if not active(0):
            return []
        return [(0, emit_fn(b, op, adj, av))]

    RULES[opcode] = AdjointRule(deps, emit)


_unary("abs", lambda op: [op.operands[0]],
       lambda b, op, adj, av: b.mul(adj, b.copysign(1.0, av(op.operands[0]))))

# sqrt: d = adj / (2*sqrt(x)) — expressed through the primal *result*.
_unary("sqrt", lambda op: [op.result],
       lambda b, op, adj, av: b.div(adj, b.mul(2.0, av(op.result))))

# cbrt: r = x^(1/3); dr/dx = r / (3x).
_unary("cbrt", lambda op: [op.result, op.operands[0]],
       lambda b, op, adj, av: b.div(b.mul(adj, av(op.result)),
                                    b.mul(3.0, av(op.operands[0]))))

_unary("sin", lambda op: [op.operands[0]],
       lambda b, op, adj, av: b.mul(adj, b.cos(av(op.operands[0]))))

_unary("cos", lambda op: [op.operands[0]],
       lambda b, op, adj, av: b.neg(b.mul(adj, b.sin(av(op.operands[0])))))

# tan: d/dx = 1 + tan(x)^2, via the result.
_unary("tan", lambda op: [op.result],
       lambda b, op, adj, av: b.mul(adj, b.fma(av(op.result), av(op.result),
                                               b.const(1.0))))

_unary("exp", lambda op: [op.result],
       lambda b, op, adj, av: b.mul(adj, av(op.result)))

_unary("log", lambda op: [op.operands[0]],
       lambda b, op, adj, av: b.div(adj, av(op.operands[0])))


def _pow_deps(op, active):
    deps = []
    if active(0):
        deps.extend([op.operands[0], op.operands[1]])
    if active(1):
        deps.extend([op.operands[0], op.result])
    return deps


def _pow_emit(b, op, adj, av, active):
    out = []
    if active(0):
        x, y = av(op.operands[0]), av(op.operands[1])
        out.append((0, b.mul(adj, b.mul(y, b.pow(x, b.sub(y, 1.0))))))
    if active(1):
        x, r = av(op.operands[0]), av(op.result)
        out.append((1, b.mul(adj, b.mul(r, b.log(x)))))
    return out


RULES["pow"] = AdjointRule(_pow_deps, _pow_emit)


def _copysign_deps(op, active):
    return [op.operands[0], op.operands[1]] if active(0) else []


def _copysign_emit(b, op, adj, av, active):
    if not active(0):
        return []  # derivative w.r.t. the sign source is 0 a.e.
    sx = b.copysign(1.0, av(op.operands[0]))
    sy = b.copysign(1.0, av(op.operands[1]))
    return [(0, b.mul(adj, b.mul(sx, sy)))]


RULES["copysign"] = AdjointRule(_copysign_deps, _copysign_emit)


#: Float-producing opcodes with *zero* derivative (discrete / casts).
ZERO_DERIVATIVE = frozenset({"floor", "itof"})


def rule_for(opcode: str) -> AdjointRule | None:
    return RULES.get(opcode)
