"""repro.apps.minibude — the miniBUDE molecular-docking proxy.

Variants: ``serial``, ``openmp`` (C++-style kmpc closures), ``julia``
(chunked task parallelism with GC array indirection) — the paper's
second application (§VII), used to validate the LULESH performance
claims on a compute-bound kernel and to exercise Julia shared-memory
parallelism.
"""

from .deck import Deck, make_deck
from .driver import MinibudeApp
from .kernels import ARG_NAMES, VARIANTS, build_minibude
from .reference import pose_energy, run_reference

__all__ = ["Deck", "make_deck", "MinibudeApp", "ARG_NAMES", "VARIANTS",
           "build_minibude", "pose_energy", "run_reference"]
