"""NumPy reference for the miniBUDE proxy energy kernel."""

from __future__ import annotations

import numpy as np

from .deck import (
    DESOLV_SCALE,
    DESOLV_SIGMA,
    ELEC_CUTOFF,
    ELEC_SCALE,
    HARDNESS,
    Deck,
)


def rotation(ang: np.ndarray) -> np.ndarray:
    """Z·Y·X Euler rotation, matching the IR emission order."""
    sx, cx = np.sin(ang[0]), np.cos(ang[0])
    sy, cy = np.sin(ang[1]), np.cos(ang[1])
    sz, cz = np.sin(ang[2]), np.cos(ang[2])
    rx = np.array([[1, 0, 0], [0, cx, -sx], [0, sx, cx]])
    ry = np.array([[cy, 0, sy], [0, 1, 0], [-sy, 0, cy]])
    rz = np.array([[cz, -sz, 0], [sz, cz, 0], [0, 0, 1]])
    return rz @ ry @ rx


def pose_energy(deck: Deck, pose: np.ndarray) -> float:
    R = rotation(pose[:3])
    t = pose[3:]
    etot = 0.0
    for l in range(deck.nligand):
        lp = R @ deck.ligand_pos[l] + t
        for p in range(deck.nprotein):
            dx = lp - deck.protein_pos[p]
            d = np.sqrt(dx @ dx + 1e-12)
            distbb = d - (deck.protein_radius[p] + deck.ligand_radius[l])
            # steric clash (only when overlapping)
            steric = np.where(distbb < 0.0, -distbb * 2.0 * HARDNESS, 0.0)
            # electrostatics with linear distance cutoff
            chrg = deck.protein_charge[p] * deck.ligand_charge[l]
            scale = np.maximum(1.0 - d / ELEC_CUTOFF, 0.0)
            elect = chrg * ELEC_SCALE * scale
            # desolvation (hydrophobic burial)
            dslv = (DESOLV_SCALE * deck.protein_hphb[p]
                    * deck.ligand_hphb[l]
                    * np.exp(-(d * d) / (DESOLV_SIGMA * DESOLV_SIGMA)))
            etot += steric + elect - dslv
    return 0.5 * etot


def run_reference(deck: Deck) -> np.ndarray:
    return np.array([pose_energy(deck, deck.poses[i])
                     for i in range(deck.nposes)])
