"""IR emission of the miniBUDE proxy energy kernel.

Variants (paper §VII): ``serial``, C++-style ``openmp`` (kmpc closure +
worksharing over poses), ``julia`` (one spawned task per pose chunk, as
the paper's miniBUDE.jl uses Julia tasks; the core kernel is no-inlined,
matching §VII-A-c), and ``mpi`` (rank 0 broadcasts the poses, ranks
evaluate a block partition into a local buffer, and an
``allreduce(sum)`` assembles the energies — the bulk-synchronous
decomposition exercised by the commcheck duality verifier).

The pose loop is the parallel dimension; the per-pose body rotates and
translates each ligand atom, then accumulates steric, electrostatic,
and desolvation contributions over every protein atom — the heavily
compute-bound double loop of the original.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Optional

from ...frontends.openmp import OpenMP
from ...ir import (
    F64,
    I64,
    IRBuilder,
    CallOp,
    Module,
    Ptr,
    Task,
    Value,
    verify_module,
)
from .deck import (
    DESOLV_SCALE,
    DESOLV_SIGMA,
    ELEC_CUTOFF,
    ELEC_SCALE,
    HARDNESS,
)

ARG_NAMES = ("protein_xyz", "protein_radius", "protein_charge",
             "protein_hphb", "ligand_xyz", "ligand_radius",
             "ligand_charge", "ligand_hphb", "poses", "energies")

VARIANTS = ("serial", "openmp", "julia", "mpi")


def build_minibude(variant: str, nprotein: int, nligand: int,
                   nposes: int, ntasks: int = 8,
                   module: Optional[Module] = None) -> tuple[Module, str]:
    """Emit ``bude_<variant>`` specialized for the deck sizes."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown miniBUDE variant {variant!r}")
    b = IRBuilder(module)
    fn_name = f"bude_{variant}"
    args = [(n, Ptr(F64)) for n in ARG_NAMES]
    # Declared array extents for static bounds certification: xyz
    # tables are flattened (N, 3), poses flattened (P, 6).
    extents = {
        "protein_xyz": 3 * nprotein, "protein_radius": nprotein,
        "protein_charge": nprotein, "protein_hphb": nprotein,
        "ligand_xyz": 3 * nligand, "ligand_radius": nligand,
        "ligand_charge": nligand, "ligand_hphb": nligand,
        "poses": 6 * nposes, "energies": nposes,
    }
    attrs = [{"noalias": True, "extent": extents[n]} for n in ARG_NAMES]

    with b.function(fn_name, args, arg_attrs=attrs) as f:
        A = {n: f.arg(n) for n in ARG_NAMES}
        if variant == "openmp":
            omp = OpenMP(b)
            captured = list(A.values())
            with omp.parallel_for(0, nposes, captured=captured,
                                  name="pose") as (i, env):
                _emit_pose_body(b, i, lambda v: env.get(v, v), A,
                                nprotein, nligand)
        elif variant == "julia":
            julia_descs = set(A.values())

            def fasten_region(lo: int, hi: int) -> None:
                with b.for_(lo, hi, simd=True, name="pose") as i:
                    memo: dict = {}

                    def g(v: Value) -> Value:
                        if v in julia_descs:
                            got = memo.get(v)
                            if got is None:
                                op = CallOp("jl.arrayptr", [v], v.type)
                                b.emit(op)
                                got = memo[v] = op.result
                            return got
                        return v

                    _emit_pose_body(b, i, g, A, nprotein, nligand)

            tasks = b.alloc(ntasks, Task, space="gc", name="tasks")
            per = -(-nposes // ntasks)
            for c in range(ntasks):
                lo, hi = c * per, min((c + 1) * per, nposes)
                with b.spawn(framework="julia") as t:
                    if hi > lo:
                        fasten_region(lo, hi)
                b.store(t, tasks, c)
            for c in range(ntasks):
                b.call("task.wait", b.load(tasks, c))
        elif variant == "mpi":
            rank = b.call("mpi.comm_rank")
            size = b.call("mpi.comm_size")
            # Rank 0 owns the candidate poses; the deck geometry is
            # replicated, so only the poses travel.
            b.call("mpi.bcast", A["poses"], 6 * nposes, 0)
            local = b.alloc(nposes, name="local_energies")
            b.memset(local, 0.0, nposes)
            per = b.idiv(b.add(nposes - 1, size), size)
            lo = b.mul(rank, per)
            hi = b.add(lo, per)
            hi = b.select(b.cmp("lt", hi, nposes), hi,
                          b.const(nposes, I64))
            with b.for_(lo, hi, simd=True, name="pose") as i:
                _emit_pose_body(b, i,
                                lambda v: local if v is A["energies"]
                                else v, A, nprotein, nligand)
            b.call("mpi.allreduce", local, A["energies"], nposes,
                   op="sum")
        else:
            with b.for_(0, nposes, simd=True, name="pose") as i:
                _emit_pose_body(b, i, lambda v: v, A, nprotein, nligand)

    verify_module(b.module)
    return b.module, fn_name


def _emit_pose_body(b: IRBuilder, i, g, A, nprotein: int,
                    nligand: int) -> None:
    base = b.mul(i, 6)
    poses = g(A["poses"])
    ax = b.load(poses, base)
    ay = b.load(poses, b.add(base, 1))
    az = b.load(poses, b.add(base, 2))
    tx = b.load(poses, b.add(base, 3))
    ty = b.load(poses, b.add(base, 4))
    tz = b.load(poses, b.add(base, 5))

    sx, cx = b.sin(ax), b.cos(ax)
    sy, cy = b.sin(ay), b.cos(ay)
    sz, cz = b.sin(az), b.cos(az)
    # R = Rz · Ry · Rx
    r00 = b.mul(cz, cy)
    r01 = b.sub(b.mul(b.mul(cz, sy), sx), b.mul(sz, cx))
    r02 = b.add(b.mul(b.mul(cz, sy), cx), b.mul(sz, sx))
    r10 = b.mul(sz, cy)
    r11 = b.add(b.mul(b.mul(sz, sy), sx), b.mul(cz, cx))
    r12 = b.sub(b.mul(b.mul(sz, sy), cx), b.mul(cz, sx))
    r20 = b.neg(sy)
    r21 = b.mul(cy, sx)
    r22 = b.mul(cy, cx)

    acc = b.alloc(1, name="etot")
    b.store(0.0, acc, 0)

    lig = g(A["ligand_xyz"])
    lrad_p = g(A["ligand_radius"])
    lchg_p = g(A["ligand_charge"])
    lhphb_p = g(A["ligand_hphb"])
    pro = g(A["protein_xyz"])
    prad_p = g(A["protein_radius"])
    pchg_p = g(A["protein_charge"])
    phphb_p = g(A["protein_hphb"])

    with b.for_(0, nligand, name="l") as l:
        lb3 = b.mul(l, 3)
        lx = b.load(lig, lb3)
        ly = b.load(lig, b.add(lb3, 1))
        lz = b.load(lig, b.add(lb3, 2))
        px_ = b.add(b.add(b.add(b.mul(r00, lx), b.mul(r01, ly)),
                          b.mul(r02, lz)), tx)
        py_ = b.add(b.add(b.add(b.mul(r10, lx), b.mul(r11, ly)),
                          b.mul(r12, lz)), ty)
        pz_ = b.add(b.add(b.add(b.mul(r20, lx), b.mul(r21, ly)),
                          b.mul(r22, lz)), tz)
        lrad = b.load(lrad_p, l)
        lchg = b.load(lchg_p, l)
        lhphb = b.load(lhphb_p, l)

        with b.for_(0, nprotein, name="pa") as p:
            pb3 = b.mul(p, 3)
            dx = b.sub(px_, b.load(pro, pb3))
            dy = b.sub(py_, b.load(pro, b.add(pb3, 1)))
            dz = b.sub(pz_, b.load(pro, b.add(pb3, 2)))
            d = b.sqrt(b.add(b.add(b.mul(dx, dx), b.mul(dy, dy)),
                             b.add(b.mul(dz, dz), 1e-12)))
            distbb = b.sub(d, b.add(b.load(prad_p, p), lrad))
            steric = b.select(b.cmp("lt", distbb, 0.0),
                              b.mul(b.neg(distbb), 2.0 * HARDNESS),
                              b.const(0.0))
            chrg = b.mul(b.load(pchg_p, p), lchg)
            scale = b.max(b.sub(1.0, b.div(d, ELEC_CUTOFF)), 0.0)
            elect = b.mul(b.mul(chrg, ELEC_SCALE), scale)
            dslv = b.mul(
                b.mul(b.mul(DESOLV_SCALE, b.load(phphb_p, p)), lhphb),
                b.exp(b.neg(b.div(b.mul(d, d),
                                  DESOLV_SIGMA * DESOLV_SIGMA))))
            term = b.sub(b.add(steric, elect), dslv)
            b.store(b.add(b.load(acc, 0), term), acc, 0)

    b.store(b.mul(0.5, b.load(acc, 0)), g(A["energies"]), i)
