"""miniBUDE drivers: forward, Enzyme gradient, tape baseline, FD check."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ...ad import ADConfig, Duplicated, autodiff
from ...baselines.codipack import CoDiPackTape, codipack_gradient
from ...interp import ExecConfig, Executor
from ...parallel import SimMPI
from ...perf.machine import MachineModel, c6i_metal
from .deck import Deck, make_deck
from .kernels import ARG_NAMES, build_minibude
from .reference import run_reference


@dataclass
class BudeResult:
    energies: np.ndarray
    time: float
    cost: object = None


class MinibudeApp:
    def __init__(self, variant: str, deck: Optional[Deck] = None,
                 ntasks: int = 8,
                 ad_config: Optional[ADConfig] = None,
                 machine: Optional[MachineModel] = None,
                 sanitize: bool = False, backend: str = "interp",
                 fusion: bool = True,
                 compile_cache: Optional[str] = None,
                 nprocs: int = 4,
                 cc: Optional[str] = None) -> None:
        self.variant = variant
        self.deck = deck or make_deck()
        #: Simulated communicator size (mpi variant only).
        self.nprocs = nprocs
        self.machine = machine or c6i_metal()
        self.module, self.fn = build_minibude(
            variant, self.deck.nprotein, self.deck.nligand,
            self.deck.nposes, ntasks=ntasks)
        self.ad_config = ad_config or ADConfig()
        if variant == "julia":
            self.ad_config.cache_space = "gc"
        #: Run every execution under the dynamic race checker.
        self.sanitize = sanitize
        #: "interp", "compiled" or "native" (see ExecConfig.backend).
        self.backend = backend
        #: Trace fusion / persistent compile cache / C compiler
        #: (compiled + native backends).
        self.fusion = fusion
        self.compile_cache = compile_cache
        self.cc = cc
        #: Backend counters from the most recent single-rank run
        #: (None for the mpi variant or the interp backend).
        self.last_compile_stats: Optional[dict] = None
        self._grad: Optional[str] = None

    def region_report(self) -> dict:
        """Statement-level native-region claimability report for this
        variant's kernel (``repro.passes.regioncheck``); the payload
        ``summarize --region-report`` renders."""
        from ...passes.regioncheck import region_report
        return region_report(self.module.functions[self.fn], self.module)

    # ------------------------------------------------------------------
    def grad_fn(self) -> str:
        if self._grad is None:
            acts = [Duplicated] * len(ARG_NAMES)
            self._grad = autodiff(self.module, self.fn, acts,
                                  self.ad_config)
        return self._grad

    def _config(self, num_threads: int) -> ExecConfig:
        return ExecConfig(num_threads=num_threads, machine=self.machine,
                          sanitize=self.sanitize, backend=self.backend,
                          fusion=self.fusion,
                          compile_cache=self.compile_cache, cc=self.cc)

    def _args(self) -> tuple[dict, tuple]:
        flat = self.deck.flat_args()
        return flat, tuple(flat[n] for n in ARG_NAMES)

    def _mpi_flats(self, deck: Optional[Deck] = None) -> list[dict]:
        """Per-rank argument sets.  Only rank 0 holds the poses (the
        kernel broadcasts them), which makes a missing bcast fail
        loudly rather than silently replicate."""
        deck = deck or self.deck
        flats = [deck.flat_args() for _ in range(self.nprocs)]
        for flat in flats[1:]:
            flat["poses"][...] = 0.0
        return flats

    # ------------------------------------------------------------------
    def run_forward(self, num_threads: int = 1) -> BudeResult:
        if self.variant == "mpi":
            flats = self._mpi_flats()
            engine = SimMPI(self.module, self.nprocs,
                            self._config(num_threads), self.machine)
            res = engine.run(self.fn, lambda r: tuple(
                flats[r][n] for n in ARG_NAMES))
            return BudeResult(flats[0]["energies"], res.time,
                              res.total_cost)
        flat, args = self._args()
        ex = Executor(self.module, self._config(num_threads))
        ex.run(self.fn, *args)
        self.last_compile_stats = ex.compile_stats()
        return BudeResult(flat["energies"], ex.clock, ex.cost)

    def run_gradient(self, num_threads: int = 1,
                     seed: float = 1.0) -> tuple[dict, BudeResult]:
        """Gradient with d(energies) seeded; returns shadows by name.

        For the mpi variant only rank 0's output shadow is seeded, so
        after the adjoint collectives (allreduce→allreduce, bcast→
        reduce onto root) rank 0's ``poses`` shadow equals the serial
        gradient; rank 0's shadows are returned."""
        if self.variant == "mpi":
            flats = self._mpi_flats()
            shadows = [{n: np.zeros_like(flats[r][n]) for n in ARG_NAMES}
                       for r in range(self.nprocs)]
            shadows[0]["energies"][...] = seed

            def grad_args(r: int) -> tuple:
                out = []
                for n in ARG_NAMES:
                    out += [flats[r][n], shadows[r][n]]
                return tuple(out)

            engine = SimMPI(self.module, self.nprocs,
                            self._config(num_threads), self.machine)
            res = engine.run(self.grad_fn(), grad_args)
            return shadows[0], BudeResult(flats[0]["energies"], res.time,
                                          res.total_cost)
        flat, args = self._args()
        shadows = {n: np.zeros_like(flat[n]) for n in ARG_NAMES}
        shadows["energies"][...] = seed
        grad_args = []
        for n in ARG_NAMES:
            grad_args += [flat[n], shadows[n]]
        ex = Executor(self.module, self._config(num_threads))
        ex.run(self.grad_fn(), *grad_args)
        self.last_compile_stats = ex.compile_stats()
        return shadows, BudeResult(flat["energies"], ex.clock, ex.cost)

    def run_codipack_gradient(self) -> tuple[np.ndarray, BudeResult]:
        flat, args = self._args()
        grads, ex = codipack_gradient(
            self.module, self.fn, args, seed_arrays=[flat["energies"]],
            wrt_arrays=[flat["poses"]], config=self._config(1))
        return grads[0], BudeResult(flat["energies"], ex.clock, ex.cost)

    # ------------------------------------------------------------------
    def reference_energies(self) -> np.ndarray:
        return run_reference(self.deck)

    def projection_check(self, num_threads: int = 1,
                         eps: float = 1e-6) -> tuple[float, float]:
        """§VII projection: d(Σ energies)/d(poses · all-ones)."""
        def value(delta: float) -> float:
            deck = make_deck(self.deck.nprotein, self.deck.nligand,
                             self.deck.nposes)
            deck.poses[...] = self.deck.poses + delta
            if self.variant == "mpi":
                flats = self._mpi_flats(deck)
                engine = SimMPI(self.module, self.nprocs,
                                self._config(num_threads), self.machine)
                engine.run(self.fn, lambda r: tuple(
                    flats[r][n] for n in ARG_NAMES))
                return float(flats[0]["energies"].sum())
            flat = deck.flat_args()
            ex = Executor(self.module, self._config(num_threads))
            ex.run(self.fn, *(flat[n] for n in ARG_NAMES))
            return float(flat["energies"].sum())

        fd = (value(eps) - value(-eps)) / (2 * eps)
        shadows, _ = self.run_gradient(num_threads)
        rev = float(shadows["poses"].sum())
        return rev, fd


def main(argv: Optional[list] = None) -> int:
    """CLI: run one miniBUDE variant forward; ``--region-report``
    prints the native-region claimability report for its kernel."""
    import argparse
    import json
    import sys

    from .kernels import VARIANTS

    ap = argparse.ArgumentParser(
        prog="python -m repro.apps.minibude.driver",
        description="Run a miniBUDE variant (forward).")
    ap.add_argument("--variant", default="openmp",
                    choices=sorted(VARIANTS))
    ap.add_argument("--backend", default="interp",
                    choices=["interp", "compiled", "native"])
    ap.add_argument("--threads", type=int, default=1)
    ap.add_argument("--json", action="store_true",
                    help="emit the raw report as JSON")
    ap.add_argument("--region-report", action="store_true",
                    help="include the native-region claimability "
                         "report (regioncheck) in the output")
    args = ap.parse_args(argv)

    app = MinibudeApp(args.variant, backend=args.backend)
    res = app.run_forward(args.threads)
    report = {
        "variant": args.variant, "backend": args.backend,
        "forward_time": res.time,
        "energy_sum": float(res.energies.sum()),
    }
    if args.region_report:
        rep = app.region_report()
        if args.json:
            report["region_report"] = rep
        else:
            from ...tools.summarize import render_region_report
            print(render_region_report(rep))
    if args.json:
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for k, v in report.items():
            print(f"{k}: {v}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
