"""Synthetic molecular-docking deck for the miniBUDE proxy.

miniBUDE ships the ``bm1`` deck (a real protein/ligand pair); that data
is not redistributable here, so we generate a synthetic deck with the
same *shape*: protein atoms and ligand atoms with radii/charges/
hydrophobicity parameters, and a set of candidate poses (three Euler
angles + translation each).  The kernel is compute-bound over
poses × protein × ligand exactly like the original (§VII: "hundreds of
thousands of pose-evaluations"; scaled down for the interpreter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Deck:
    protein_pos: np.ndarray    # (N, 3)
    protein_radius: np.ndarray
    protein_charge: np.ndarray
    protein_hphb: np.ndarray
    ligand_pos: np.ndarray     # (M, 3)
    ligand_radius: np.ndarray
    ligand_charge: np.ndarray
    ligand_hphb: np.ndarray
    poses: np.ndarray          # (P, 6): 3 Euler angles + translation

    @property
    def nprotein(self) -> int:
        return len(self.protein_radius)

    @property
    def nligand(self) -> int:
        return len(self.ligand_radius)

    @property
    def nposes(self) -> int:
        return self.poses.shape[0]

    def flat_args(self) -> dict:
        """1-D arrays in the kernel's layout (xyz interleaved)."""
        return {
            "protein_xyz": self.protein_pos.ravel().copy(),
            "protein_radius": self.protein_radius.copy(),
            "protein_charge": self.protein_charge.copy(),
            "protein_hphb": self.protein_hphb.copy(),
            "ligand_xyz": self.ligand_pos.ravel().copy(),
            "ligand_radius": self.ligand_radius.copy(),
            "ligand_charge": self.ligand_charge.copy(),
            "ligand_hphb": self.ligand_hphb.copy(),
            "poses": self.poses.ravel().copy(),
            "energies": np.zeros(self.nposes),
        }


# Kernel constants (miniBUDE-flavoured).
HARDNESS = 38.0
ELEC_SCALE = 45.0
ELEC_CUTOFF = 8.0
DESOLV_SIGMA = 3.5
DESOLV_SCALE = 0.8


def make_deck(nprotein: int = 24, nligand: int = 8, nposes: int = 64,
              seed: int = 42) -> Deck:
    rng = np.random.default_rng(seed)
    protein_pos = rng.uniform(-6.0, 6.0, size=(nprotein, 3))
    ligand_pos = rng.uniform(-1.5, 1.5, size=(nligand, 3))
    poses = np.empty((nposes, 6))
    poses[:, :3] = rng.uniform(-np.pi, np.pi, size=(nposes, 3))
    poses[:, 3:] = rng.uniform(-2.0, 2.0, size=(nposes, 3))
    return Deck(
        protein_pos=protein_pos,
        protein_radius=rng.uniform(1.2, 2.2, size=nprotein),
        protein_charge=rng.uniform(-0.5, 0.5, size=nprotein),
        protein_hphb=rng.uniform(0.0, 1.0, size=nprotein),
        ligand_pos=ligand_pos,
        ligand_radius=rng.uniform(1.0, 1.8, size=nligand),
        ligand_charge=rng.uniform(-0.4, 0.4, size=nligand),
        ligand_hphb=rng.uniform(0.0, 1.0, size=nligand),
        poses=poses,
    )
