"""IR emission of the LULESH proxy, parameterized by parallel flavor.

``build_lulesh(flavor, nx, pr)`` emits a complete Lagrange-leapfrog
time loop specialized for the per-rank problem size (bounds are
compile-time constants, as in a ``-DNX=...`` build) in one of the
paper's framework variants:

* ``serial`` — plain vectorizable loops;
* ``openmp`` — ``__kmpc_fork`` closures + worksharing loops (Fig. 3
  lowering, through :class:`repro.frontends.openmp.OpenMP`);
* ``raja``   — RAJA::forall lowering onto the same OpenMP substrate;
* ``mpi``    — single-threaded ranks + face-ordered ghost-force
  exchange with nonblocking send/recv/wait;
* ``hybrid`` — MPI exchange + OpenMP kernels (MPI_THREAD_FUNNELED);
* ``julia`` / ``julia_mpi`` — GC array descriptors with per-kernel
  ``jl.arrayptr`` indirection, MPI.jl wrappers under ``gc_preserve``.

Every flavor evaluates the *same arithmetic in the same order*, so all
runs agree with :mod:`repro.apps.lulesh.reference` to rounding noise
and the decomposed runs agree with the serial one (min-reductions are
pairwise trees, which are order-exact for min).
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ...frontends.openmp import OpenMP
from ...ir import (
    F64,
    I64,
    IRBuilder,
    CallOp,
    Module,
    PointerType,
    Ptr,
    Request,
    Value,
    verify_module,
)
from .mesh import (
    ALL_FLOAT_FIELDS,
    ELEM_FIELDS,
    INT_FIELDS,
    MASK_FIELDS,
    NODAL_FIELDS,
    TIME_FIELD,
)
from .physics import DEFAULT_PARAMS, HEX_FACES, LuleshParams


@dataclass(frozen=True)
class Flavor:
    name: str
    style: str            # "omp" | "simd" | "julia"
    mpi: bool
    raja_tag: bool = False


FLAVORS: dict[str, Flavor] = {
    "serial": Flavor("serial", "simd", False),
    "openmp": Flavor("openmp", "omp", False),
    "raja": Flavor("raja", "omp", False, raja_tag=True),
    "mpi": Flavor("mpi", "simd", True),
    "hybrid": Flavor("hybrid", "omp", True),
    "raja_mpi": Flavor("raja_mpi", "omp", True, raja_tag=True),
    "julia": Flavor("julia", "julia", False),
    "julia_mpi": Flavor("julia_mpi", "julia", True),
}


class _Emitter:
    """Flavor-directed loop and array-access emission."""

    def __init__(self, b: IRBuilder, flavor: Flavor,
                 julia_descs: set[Value]) -> None:
        self.b = b
        self.flavor = flavor
        self.julia_descs = julia_descs
        self.omp = OpenMP(b) if flavor.style == "omp" else None

    @contextlib.contextmanager
    def loop(self, count, used: Sequence[Value], name: str = "i"):
        """A parallel-semantics loop over [0, count) in flavor style.

        Yields ``(i, g)`` where ``g(v)`` resolves an outer value to its
        in-region form (closure reload for OpenMP/RAJA, data-pointer
        extraction for Julia, identity otherwise).
        """
        b = self.b
        fl = self.flavor
        if fl.style == "omp":
            captured = [v for v in used]
            with self.omp.parallel_for(0, count, captured=captured,
                                       name=name) as (i, env):
                if fl.raja_tag:
                    # Tag the enclosing fork for reporting; RAJA needs
                    # no AD support — it *is* the OpenMP lowering.
                    ws = b.block.parent_op
                    ws.parent.parent_op.attrs["framework"] = "raja"
                yield i, (lambda v: env.get(v, v))
        elif fl.style == "julia":
            with b.for_(0, count, simd=True, name=name) as i:
                memo: dict = {}

                def g(v: Value) -> Value:
                    if v in self.julia_descs:
                        got = memo.get(v)
                        if got is None:
                            op = CallOp("jl.arrayptr", [v], v.type)
                            b.emit(op)
                            got = memo[v] = op.result
                        return got
                    return v

                yield i, g
        else:
            with b.for_(0, count, simd=True, name=name) as i:
                yield i, (lambda v: v)

    def data(self, v: Value) -> Value:
        """Out-of-loop data pointer (Julia: one arrayptr call)."""
        if v in self.julia_descs:
            op = CallOp("jl.arrayptr", [v], v.type)
            self.b.emit(op)
            return op.result
        return v


def _emit_face_geometry(b: IRBuilder, cx, cy, cz):
    """Area vectors (0.5 d1×d2) and centroids of the 6 faces, matching
    ``reference._face_geometry`` operation for operation."""
    faces = []
    for (a, bb, c, d) in HEX_FACES:
        d1x = b.sub(cx[c], cx[a])
        d1y = b.sub(cy[c], cy[a])
        d1z = b.sub(cz[c], cz[a])
        d2x = b.sub(cx[d], cx[bb])
        d2y = b.sub(cy[d], cy[bb])
        d2z = b.sub(cz[d], cz[bb])
        ax = b.mul(0.5, b.sub(b.mul(d1y, d2z), b.mul(d1z, d2y)))
        ay = b.mul(0.5, b.sub(b.mul(d1z, d2x), b.mul(d1x, d2z)))
        az = b.mul(0.5, b.sub(b.mul(d1x, d2y), b.mul(d1y, d2x)))
        cxm = b.mul(0.25, b.add(b.add(cx[a], cx[bb]), b.add(cx[c], cx[d])))
        cym = b.mul(0.25, b.add(b.add(cy[a], cy[bb]), b.add(cy[c], cy[d])))
        czm = b.mul(0.25, b.add(b.add(cz[a], cz[bb]), b.add(cz[c], cz[d])))
        faces.append((ax, ay, az, cxm, cym, czm))
    return faces


def _emit_volume(b: IRBuilder, faces):
    vol = b.const(0.0)
    for (ax, ay, az, cxm, cym, czm) in faces:
        term = b.add(b.add(b.mul(cxm, ax), b.mul(cym, ay)), b.mul(czm, az))
        vol = b.add(vol, term)
    return b.div(vol, 3.0)


def _gather_corners(b, g, nodelist, e, fields):
    base = b.mul(e, 8)
    nodes = [b.load(g(nodelist), b.add(base, k)) for k in range(8)]
    out = []
    for f in fields:
        out.append([b.load(g(f), nodes[k]) for k in range(8)])
    return nodes, out


def build_lulesh(flavor_name: str, nx: int, pr: int = 1,
                 params: LuleshParams = DEFAULT_PARAMS,
                 module: Optional[Module] = None,
                 time_loop_adjoint: Optional[str] = None
                 ) -> tuple[Module, str]:
    """Emit the flavor's time loop; returns (module, function name).

    The function signature is ``(``all float fields``, ``int fields``,
    ``mask fields``, steps)`` in the order of
    :data:`repro.apps.lulesh.mesh.ALL_FIELDS`.

    ``time_loop_adjoint`` tags the time loop with a per-region adjoint
    strategy (``"checkpoint"`` / ``"implicit"`` / ``"cache-all"``); None
    leaves the choice to ``ADConfig.adjoint``.
    """
    fl = FLAVORS[flavor_name]
    p = params
    ns = nx + 1
    nelem = nx ** 3
    nnode = ns ** 3
    plane = ns * ns
    pow2 = 1 << max(1, math.ceil(math.log2(max(2, nelem))))

    b = IRBuilder(module)
    fn_name = f"lulesh_{flavor_name}"

    args = [(f, Ptr(F64)) for f in ALL_FLOAT_FIELDS]
    args += [(f, Ptr(I64)) for f in INT_FIELDS]
    args += [(f, Ptr(F64)) for f in MASK_FIELDS]
    args += [("steps", I64)]
    # Declared array extents (the bounds-certification contract; see
    # DESIGN §11): nodal fields are nnode-long, element fields
    # nelem-long, the connectivity tables carry 8 entries per element
    # (nodelist) / node (corner_ell), timestate is the 4-slot
    # [time, dt, dtcourant, dthydro] record.
    extents = {f: nnode for f in NODAL_FIELDS}
    extents.update({f: nelem for f in ELEM_FIELDS})
    extents[TIME_FIELD] = 4
    extents["nodelist"] = 8 * nelem
    extents["corner_ell"] = 8 * nnode
    extents.update({f: nelem for f in INT_FIELDS[2:]})
    extents.update({f: nnode for f in MASK_FIELDS})
    attrs = [{"noalias": True, "extent": extents[name]}
             for name, _ in args[:-1]] + [{}]

    with b.function(fn_name, args, arg_attrs=attrs) as f:
        A = {name: f.arg(name) for name in
             ALL_FLOAT_FIELDS + INT_FIELDS + MASK_FIELDS}
        steps = f.arg("steps")

        julia_descs = set(A.values()) if fl.style == "julia" else set()
        em = _Emitter(b, fl, julia_descs)

        space = "gc" if fl.style == "julia" else "stack"
        fex = b.alloc(8 * nelem + 1, space=space, name="fex")
        fey = b.alloc(8 * nelem + 1, space=space, name="fey")
        fez = b.alloc(8 * nelem + 1, space=space, name="fez")
        cand = b.alloc(pow2, space=space, name="cand")
        vnew_arr = b.alloc(nelem, space=space, name="vnew")
        if fl.mpi:
            sendbuf = b.alloc(3 * plane, space=space, name="sendbuf")
            recvbuf = b.alloc(3 * plane, space=space, name="recvbuf")
            dt_cells = b.alloc(2, space=space, name="dtcells")
            rank = b.call("mpi.comm_rank")
            rx = rank % pr
            ry = (rank // pr) % pr
            rz = rank // (pr * pr)

        with b.for_(0, steps, name="s", adjoint=time_loop_adjoint) as s:
            ts = A[TIME_FIELD]
            # ---------------- time increment -------------------------
            dt_cell = b.alloc(1, name="dt_new")
            with b.if_(b.cmp("eq", s, 0)):
                b.store(p.dt_initial, em.data(dt_cell), 0)
            with b.else_():
                _emit_dt_candidate(b, em, A, cand, nelem, pow2, p, dt_cell)
            if fl.mpi:
                _mpi_allreduce_min_dt(b, em, fl, dt_cell, dt_cells)
            dt = b.load(em.data(dt_cell), 0)
            tsd = em.data(ts)
            b.store(dt, tsd, 1)
            b.store(b.add(b.load(tsd, 0), dt), tsd, 0)

            # ---------------- nodal forces ---------------------------
            _emit_stress_and_hourglass(b, em, A, fex, fey, fez, nelem, p)
            _emit_corner_scatter(b, em, A, fex, fey, fez, nnode)
            if fl.mpi:
                _emit_force_exchange(b, em, fl, A, sendbuf, recvbuf,
                                     ns, pr, rx, ry, rz)

            # ---------------- node integration -----------------------
            _emit_integrate_nodes(b, em, A, nnode, dt, p)

            # ---------------- element updates ------------------------
            _emit_kinematics(b, em, A, vnew_arr, nelem, p)
            _emit_q(b, em, A, vnew_arr, nelem, p)
            _emit_eos(b, em, A, vnew_arr, nelem, p)

    verify_module(b.module)
    return b.module, fn_name


# ---------------------------------------------------------------------------
# Kernel emitters
# ---------------------------------------------------------------------------

def _emit_dt_candidate(b, em, A, cand, nelem, pow2, p, dt_cell):
    """CalcTimeConstraints: two pairwise-tree min reductions."""
    used = [A["arealg"], A["ss"], cand]
    # courant candidates
    with em.loop(nelem, used, name="e") as (e, g):
        ssc = b.max(b.load(g(A["ss"]), e), p.ss_floor)
        b.store(b.div(b.load(g(A["arealg"]), e), ssc), g(cand), e)
    _pad_and_reduce_min(b, em, cand, nelem, pow2)
    dtcourant = b.mul(b.load(em.data(cand), 0), p.cfl_courant)

    used = [A["vdov"], cand]
    with em.loop(nelem, used, name="e") as (e, g):
        dv = b.abs(b.load(g(A["vdov"]), e))
        b.store(b.div(p.cfl_hydro, b.add(dv, p.dvov_min)), g(cand), e)
    _pad_and_reduce_min(b, em, cand, nelem, pow2)
    dthydro = b.load(em.data(cand), 0)

    tsd = em.data(A[TIME_FIELD])
    b.store(dtcourant, tsd, 2)
    b.store(dthydro, tsd, 3)
    dt_prev = b.load(tsd, 1)
    dt = b.min(b.min(dtcourant, dthydro),
               b.min(b.mul(dt_prev, p.dt_mult_ub), p.dt_max))
    b.store(dt, em.data(dt_cell), 0)


def _pad_and_reduce_min(b, em, cand, nelem, pow2):
    """Pairwise-tree min fold.  Deliberately emitted as plain loops for
    every flavor: the fold is O(nelem) flops — opening a parallel
    region per pass would cost more in fork overhead than it saves
    (and min is order-exact, so all variants agree bitwise)."""
    data = em.data(cand)
    if pow2 > nelem:
        with b.for_(nelem, pow2, simd=True, name="k") as k:
            b.store(1.0e30, data, k)
    half = pow2 // 2
    while half >= 1:
        with b.for_(0, half, simd=True, name="k") as k:
            a = b.load(data, k)
            c = b.load(data, b.add(k, half))
            b.store(b.min(a, c), data, k)
        half //= 2


def _mpi_allreduce_min_dt(b, em, fl, dt_cell, dt_cells):
    send = em.data(dt_cells)
    recv = b.ptradd(em.data(dt_cells), 1)
    b.store(b.load(em.data(dt_cell), 0), send, 0)
    if fl.style == "julia":
        tok = b.call("jl.gc_preserve_begin", dt_cells)
        b.call("mpi.allreduce", send, recv, 1, op="min")
        b.call("jl.gc_preserve_end", tok)
    else:
        b.call("mpi.allreduce", send, recv, 1, op="min")
    b.store(b.load(recv, 0), em.data(dt_cell), 0)


def _emit_stress_and_hourglass(b, em, A, fex, fey, fez, nelem, p):
    """CalcVolumeForceForElems: stress face forces + hourglass drag."""
    used = [A["x"], A["y"], A["z"], A["xd"], A["yd"], A["zd"], A["p"],
            A["q"], A["ss"], A["arealg"], A["elem_mass"], A["nodelist"],
            fex, fey, fez]
    with em.loop(nelem, used, name="e") as (e, g):
        nodes, (cx, cy, cz) = _gather_corners(
            b, g, A["nodelist"], e, [A["x"], A["y"], A["z"]])
        faces = _emit_face_geometry(b, cx, cy, cz)
        sig = b.add(b.load(g(A["p"]), e), b.load(g(A["q"]), e))

        cf = {comp: [b.const(0.0)] * 8 for comp in range(3)}
        for fidx, face in enumerate(HEX_FACES):
            ax, ay, az = faces[fidx][0], faces[fidx][1], faces[fidx][2]
            contrib = (b.mul(b.mul(sig, ax), 0.25),
                       b.mul(b.mul(sig, ay), 0.25),
                       b.mul(b.mul(sig, az), 0.25))
            for k in face:
                for comp in range(3):
                    cf[comp][k] = b.add(cf[comp][k], contrib[comp])

        # hourglass-like drag toward element-mean velocity
        _, (vx, vy, vz) = _gather_corners(
            b, g, A["nodelist"], e, [A["xd"], A["yd"], A["zd"]])
        ssc = b.max(b.load(g(A["ss"]), e), p.ss_floor)
        rate = b.div(
            b.mul(b.mul(p.hgcoef, b.load(g(A["elem_mass"]), e)), ssc),
            b.add(b.load(g(A["arealg"]), e), p.ss_floor))
        for comp, vel in ((0, vx), (1, vy), (2, vz)):
            ssum = vel[0]
            for k in range(1, 8):
                ssum = b.add(ssum, vel[k])
            mean = b.mul(ssum, 0.125)
            for k in range(8):
                drag = b.mul(rate, b.sub(vel[k], mean))
                cf[comp][k] = b.sub(cf[comp][k], drag)

        base = b.mul(e, 8)
        for k in range(8):
            slot = b.add(base, k)
            b.store(cf[0][k], g(fex), slot)
            b.store(cf[1][k], g(fey), slot)
            b.store(cf[2][k], g(fez), slot)


def _emit_corner_scatter(b, em, A, fex, fey, fez, nnode):
    """Sum corner forces into nodes through the padded corner map."""
    used = [A["corner_ell"], A["fx"], A["fy"], A["fz"], fex, fey, fez]
    with em.loop(nnode, used, name="n") as (n, g):
        base = b.mul(n, 8)
        slots = [b.load(g(A["corner_ell"]), b.add(base, k))
                 for k in range(8)]
        for buf, out in ((fex, A["fx"]), (fey, A["fy"]), (fez, A["fz"])):
            s = b.load(g(buf), slots[0])
            for k in range(1, 8):
                s = b.add(s, b.load(g(buf), slots[k]))
            b.store(s, g(out), n)


def _emit_force_exchange(b, em, fl, A, sendbuf, recvbuf, ns, pr,
                         rx, ry, rz):
    """Dimension-ordered ghost-force summation (CommSBN, §VII-A)."""
    plane = ns * ns

    def node_expr(axis, fixed, pidx):
        a = b.imod(pidx, ns)
        c = b.idiv(pidx, ns)
        if axis == 0:
            return b.add(b.add(fixed, b.mul(a, ns)),
                         b.mul(c, ns * ns))
        if axis == 1:
            return b.add(b.add(a, b.mul(fixed, ns)), b.mul(c, ns * ns))
        return b.add(b.add(a, b.mul(c, ns)), b.mul(fixed, ns * ns))

    def pack(axis, fixed_plane):
        used = [A["fx"], A["fy"], A["fz"], sendbuf]
        with em.loop(plane, used, name="pk") as (pidx, g):
            node = node_expr(axis, fixed_plane, pidx)
            for c, fld in enumerate(("fx", "fy", "fz")):
                b.store(b.load(g(A[fld]), node), g(sendbuf),
                        b.add(pidx, c * plane))

    def unpack_add(axis, fixed_plane):
        used = [A["fx"], A["fy"], A["fz"], recvbuf]
        with em.loop(plane, used, name="up") as (pidx, g):
            node = node_expr(axis, fixed_plane, pidx)
            for c, fld in enumerate(("fx", "fy", "fz")):
                cur = b.load(g(A[fld]), node)
                inc = b.load(g(recvbuf), b.add(pidx, c * plane))
                b.store(b.add(cur, inc), g(A[fld]), node)

    def exchange(axis, coord, peer_delta, fixed_plane, send_tag,
                 recv_tag):
        cond = b.cmp("gt", coord, 0) if peer_delta < 0 else \
            b.cmp("lt", coord, pr - 1)
        with b.if_(cond):
            peer_stride = {0: 1, 1: pr, 2: pr * pr}[axis]
            me = b.call("mpi.comm_rank")
            peer = b.add(me, peer_delta * peer_stride)
            pack(axis, fixed_plane)
            if fl.style == "julia":
                tok = b.call("jl.gc_preserve_begin", sendbuf, recvbuf)
            r1 = b.call("mpi.isend", em.data(sendbuf), 3 * plane, peer,
                        send_tag)
            r2 = b.call("mpi.irecv", em.data(recvbuf), 3 * plane, peer,
                        recv_tag)
            b.call("mpi.wait", r1)
            b.call("mpi.wait", r2)
            if fl.style == "julia":
                b.call("jl.gc_preserve_end", tok)
            unpack_add(axis, fixed_plane)

    for axis, coord in ((0, rx), (1, ry), (2, rz)):
        lo_tag, hi_tag = 10 + axis, 20 + axis
        # exchange with the lower neighbour: my plane 0
        exchange(axis, coord, -1, 0, lo_tag, hi_tag)
        # exchange with the upper neighbour: my plane ns-1
        exchange(axis, coord, +1, ns - 1, hi_tag, lo_tag)


def _emit_integrate_nodes(b, em, A, nnode, dt, p):
    """Acceleration, symmetry BCs, velocity (with cutoff), position."""
    comps = (("fx", "xd", "x", "symm_x"), ("fy", "yd", "y", "symm_y"),
             ("fz", "zd", "z", "symm_z"))
    used = [A[n] for group in comps for n in group] + [A["nodal_mass"]]
    with em.loop(nnode, used, name="n") as (n, g):
        mass = b.load(g(A["nodal_mass"]), n)
        for fc, vc, cc, mk in comps:
            acc = b.div(b.load(g(A[fc]), n), mass)
            acc = b.mul(acc, b.load(g(A[mk]), n))
            vnew = b.add(b.load(g(A[vc]), n), b.mul(acc, dt))
            vnew = b.select(b.cmp("lt", b.abs(vnew), p.u_cut), 0.0, vnew)
            b.store(vnew, g(A[vc]), n)
            b.store(b.add(b.load(g(A[cc]), n), b.mul(vnew, dt)),
                    g(A[cc]), n)


def _emit_kinematics(b, em, A, vnew_arr, nelem, p):
    """CalcLagrangeElements: volumes, delv, arealg, vdov."""
    used = [A["x"], A["y"], A["z"], A["xd"], A["yd"], A["zd"], A["v"],
            A["volo"], A["delv"], A["arealg"], A["vdov"], A["nodelist"],
            vnew_arr]
    with em.loop(nelem, used, name="e") as (e, g):
        _, (cx, cy, cz) = _gather_corners(
            b, g, A["nodelist"], e, [A["x"], A["y"], A["z"]])
        faces = _emit_face_geometry(b, cx, cy, cz)
        vol = _emit_volume(b, faces)
        vnew = b.div(vol, b.load(g(A["volo"]), e))
        b.store(b.sub(vnew, b.load(g(A["v"]), e)), g(A["delv"]), e)
        b.store(b.cbrt(vol), g(A["arealg"]), e)
        b.store(vnew, g(vnew_arr), e)

        _, (vx, vy, vz) = _gather_corners(
            b, g, A["nodelist"], e, [A["xd"], A["yd"], A["zd"]])
        dvdt = b.const(0.0)
        for fidx, (fa, fb, fc, fd) in enumerate(HEX_FACES):
            ax, ay, az = faces[fidx][0], faces[fidx][1], faces[fidx][2]
            fvx = b.mul(0.25, b.add(b.add(vx[fa], vx[fb]),
                                    b.add(vx[fc], vx[fd])))
            fvy = b.mul(0.25, b.add(b.add(vy[fa], vy[fb]),
                                    b.add(vy[fc], vy[fd])))
            fvz = b.mul(0.25, b.add(b.add(vz[fa], vz[fb]),
                                    b.add(vz[fc], vz[fd])))
            dvdt = b.add(dvdt, b.add(b.add(b.mul(fvx, ax), b.mul(fvy, ay)),
                                     b.mul(fvz, az)))
        b.store(b.div(dvdt, vol), g(A["vdov"]), e)


def _emit_q(b, em, A, vnew_arr, nelem, p):
    """CalcQForElems: qlc/qqc viscosity, optionally with the
    neighbour-based monotonic limiter through the element indirection
    arrays (single-rank configurations)."""
    used = [A["elem_mass"], A["volo"], A["vdov"], A["arealg"], A["ss"],
            A["q"], vnew_arr]
    if p.use_monoq_limiter:
        used += [A["lxim"], A["lxip"], A["letam"], A["letap"],
                 A["lzetam"], A["lzetap"]]
    with em.loop(nelem, used, name="e") as (e, g):
        vnew = b.load(g(vnew_arr), e)
        rho = b.div(b.load(g(A["elem_mass"]), e),
                    b.mul(b.load(g(A["volo"]), e), vnew))
        dvov = b.load(g(A["vdov"]), e)
        l = b.load(g(A["arealg"]), e)
        ssc = b.max(b.load(g(A["ss"]), e), p.ss_floor)
        absdv = b.abs(dvov)
        qq = b.mul(b.mul(rho, b.mul(l, absdv)),
                   b.add(b.mul(p.qlc, ssc), b.mul(p.qqc, b.mul(l, absdv))))
        q = b.select(b.cmp("lt", dvov, 0.0), qq, b.const(0.0))
        if p.use_monoq_limiter:
            vd = g(A["vdov"])
            safe = b.select(b.cmp("gt", absdv, p.dvov_min), dvov,
                            b.const(p.dvov_min))
            phi = b.const(0.0)
            for lo_n, hi_n in (("lxim", "lxip"), ("letam", "letap"),
                               ("lzetam", "lzetap")):
                r_lo = b.div(b.load(vd, b.load(g(A[lo_n]), e)), safe)
                r_hi = b.div(b.load(vd, b.load(g(A[hi_n]), e)), safe)
                axis = b.mul(0.5, b.add(r_lo, r_hi))
                axis = b.min(axis, b.min(b.mul(p.monoq_limiter, r_lo),
                                         b.mul(p.monoq_limiter, r_hi)))
                axis = b.min(axis, p.monoq_max_slope)
                axis = b.max(axis, 0.0)
                phi = b.add(phi, axis)
            phi = b.mul(phi, 1.0 / 3.0)
            q = b.mul(q, b.max(b.sub(1.0, phi), 0.0))
        b.store(b.min(q, p.q_stop), g(A["q"]), e)


def _emit_eos(b, em, A, vnew_arr, nelem, p):
    """EvalEOSForElems + UpdateVolumesForElems."""
    used = [A["e"], A["p"], A["q"], A["v"], A["delv"], A["ss"], vnew_arr]
    with em.loop(nelem, used, name="e") as (e, g):
        vnew = b.load(g(vnew_arr), e)
        e_old = b.load(g(A["e"]), e)
        p_old = b.load(g(A["p"]), e)
        q_new = b.load(g(A["q"]), e)
        delv = b.load(g(A["delv"]), e)

        e_half = b.max(
            b.sub(e_old, b.mul(b.mul(0.5, delv), b.add(p_old, q_new))),
            p.e_min)
        p_half = b.max(b.div(b.mul(p.gamma - 1.0, e_half), vnew), p.p_min)
        work = b.add(b.add(p_old, p_half), b.mul(2.0, q_new))
        e_new = b.sub(e_old, b.mul(b.mul(0.5, delv), work))
        e_new = b.max(e_new, p.e_min)
        e_new = b.select(b.cmp("lt", b.abs(e_new), p.pressure_floor),
                         0.0, e_new)
        p_new = b.max(b.div(b.mul(p.gamma - 1.0, e_new), vnew), p.p_min)
        p_new = b.select(b.cmp("lt", b.abs(p_new), p.pressure_floor),
                         0.0, p_new)
        ss = b.sqrt(b.max(b.mul(b.mul(p.gamma, p_new), vnew),
                          p.ss_floor ** 2))

        b.store(e_new, g(A["e"]), e)
        b.store(p_new, g(A["p"]), e)
        b.store(ss, g(A["ss"]), e)
        v = b.select(b.cmp("lt", b.abs(b.sub(vnew, 1.0)), p.v_cut),
                     1.0, vnew)
        b.store(v, g(A["v"]), e)
