"""repro.apps.lulesh — the LULESH shock-hydrodynamics proxy.

Variants (paper §VII): C++-style ``serial``/``openmp``/``raja``/``mpi``
/``hybrid``/``raja_mpi`` and Julia-style ``julia``/``julia_mpi``, all
emitting the same physics so results agree across frameworks and
decompositions.
"""

from .driver import LuleshApp, domain_args, gradient_activities
from .kernels import FLAVORS, build_lulesh
from .mesh import Domain, build_domain, gather_global
from .physics import DEFAULT_PARAMS, LuleshParams

__all__ = [
    "LuleshApp", "domain_args", "gradient_activities",
    "FLAVORS", "build_lulesh",
    "Domain", "build_domain", "gather_global",
    "DEFAULT_PARAMS", "LuleshParams",
]
