"""Physical constants and model parameters of the LULESH proxy.

The proxy solves the same Sedov-blast setup as LULESH 2.0 [18], [54]:
an unstructured explicit shock-hydrodynamics Lagrange leapfrog over a
hexahedral mesh, with a single ideal-gas-like material.  Relative to
the 5000-line original we reproduce the *structure* that matters to
the paper's evaluation — kernel sequence, indirection-based data
movement (nodelist gathers, corner-list scatters, element-neighbour
lookups), min-reduction time constraints, and face-ordered MPI ghost
exchange — with these documented simplifications:

* stress is isotropic (-(p+q)); nodal forces come from the consistent
  face-normal discretization (SumElemFaceNormal / SumElemStresses-
  ToNodeForces in the original), and element volume uses the matching
  divergence-theorem form V = (1/3) Σ_faces c_f · A_f;
* the four-mode hourglass control is replaced by a viscous drag toward
  the element-mean velocity (same gather/scatter pattern, one mode);
* the artificial viscosity uses the qlc/qqc form; the neighbour-based
  monotonic limiter through the lxim/.../lzetap indirection arrays is
  available via ``use_monoq_limiter`` on single-rank runs (the MPI
  variants keep the element-local form in lieu of the original's
  CommMonoQ ghost-element exchange);
* the EOS keeps the predictor/corrector energy update and the pressure
  / energy / volume cutoffs, dropping the vacuum special cases.

All constants below have the same names/roles as in LULESH.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LuleshParams:
    # Material / EOS
    gamma: float = 1.4                # ideal-gas exponent (proxy)
    e_min: float = -1.0e15
    p_min: float = 0.0
    pressure_floor: float = 1.0e-12
    ss_floor: float = 1.0e-9

    # Artificial viscosity
    qlc: float = 0.5                  # linear coefficient (qlc_monoq)
    qqc: float = 2.0                  # quadratic coefficient (qqc_monoq)
    monoq_limiter: float = 2.0
    monoq_max_slope: float = 1.0
    #: Use the neighbour-based monotonic limiter (through the
    #: lxim/.../lzetap indirection arrays, as the original's monotonic
    #: q does).  Available on single-rank runs; the MPI variants keep
    #: the element-local form so decomposed runs match the global one
    #: without the original's CommMonoQ ghost-element exchange.
    use_monoq_limiter: bool = False

    # Hourglass-like damping
    hgcoef: float = 0.03

    # Integration cutoffs
    u_cut: float = 1.0e-7             # velocity snap-to-zero
    v_cut: float = 1.0e-10            # relative-volume snap-to-one
    q_stop: float = 1.0e12

    # Time stepping
    dt_initial: float = 1.0e-7        # matches LULESH -s scaling order
    dt_mult_lb: float = 1.1
    dt_mult_ub: float = 1.2
    dt_max: float = 1.0e-2
    cfl_courant: float = 0.5          # qqc2-style factors folded in
    cfl_hydro: float = 0.999
    dvov_min: float = 1.0e-20

    # Sedov initial condition
    initial_energy: float = 3.948746e+7
    scale_energy_by_size: bool = True


DEFAULT_PARAMS = LuleshParams()

#: Hexahedron corner offsets in LULESH node ordering (x, y, z).
HEX_CORNERS = (
    (0, 0, 0), (1, 0, 0), (1, 1, 0), (0, 1, 0),
    (0, 0, 1), (1, 0, 1), (1, 1, 1), (0, 1, 1),
)

#: Outward-oriented quad faces of the hexahedron (local corner ids).
HEX_FACES = (
    (0, 3, 2, 1),   # z- (bottom)
    (4, 5, 6, 7),   # z+ (top)
    (0, 1, 5, 4),   # y- (front)
    (2, 3, 7, 6),   # y+ (back)
    (1, 2, 6, 5),   # x+ (right)
    (3, 0, 4, 7),   # x- (left)
)

#: Simulated-time state slot layout (time, dt, dtcourant, dthydro).
TIME_SLOTS = 4
