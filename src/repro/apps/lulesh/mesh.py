"""Mesh, domain state, and cube decomposition for the LULESH proxy.

A rank owns an ``nx``³ block of hexahedral elements ((nx+1)³ nodes) out
of a ``pr``³ rank cube, with node planes *duplicated* across adjacent
ranks exactly as in LULESH: boundary nodal forces are summed across
ranks each step (CommSBN), after which duplicated nodes evolve
identically everywhere.

The connectivity is stored unstructured — ``nodelist`` (8 corners per
element), an ELL-padded node→corner map for the force scatter, and
``lxim``/…/``lzetap`` element-neighbour arrays — mimicking "the complex
data movement characteristics of unstructured data structures" (§VII)
even though the underlying mesh is a regular cube, just like LULESH
itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .physics import DEFAULT_PARAMS, HEX_CORNERS, LuleshParams

#: Global edge length of the cube domain (LULESH uses 1.125).
DOMAIN_EDGE = 1.125

#: Array names in the canonical argument order of every variant.
NODAL_FIELDS = ("x", "y", "z", "xd", "yd", "zd", "fx", "fy", "fz",
                "nodal_mass")
ELEM_FIELDS = ("e", "p", "q", "v", "volo", "ss", "vdov", "delv",
               "arealg", "elem_mass")
INT_FIELDS = ("nodelist", "corner_ell", "lxim", "lxip", "letam", "letap",
              "lzetam", "lzetap")
MASK_FIELDS = ("symm_x", "symm_y", "symm_z")
TIME_FIELD = "timestate"          # [time, dt, dtcourant, dthydro]

ALL_FLOAT_FIELDS = NODAL_FIELDS + ELEM_FIELDS + (TIME_FIELD,)
ALL_FIELDS = ALL_FLOAT_FIELDS + INT_FIELDS + MASK_FIELDS


@dataclass
class Domain:
    nx: int                      # elements per side on this rank
    pr: int                      # ranks per side of the rank cube
    rank: int
    params: LuleshParams
    arrays: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def nelem(self) -> int:
        return self.nx ** 3

    @property
    def nnode_side(self) -> int:
        return self.nx + 1

    @property
    def nnode(self) -> int:
        return self.nnode_side ** 3

    @property
    def coords(self) -> tuple[int, int, int]:
        r = self.rank
        return (r % self.pr, (r // self.pr) % self.pr,
                r // (self.pr * self.pr))

    @property
    def h(self) -> float:
        return DOMAIN_EDGE / (self.pr * self.nx)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def copy(self) -> "Domain":
        return Domain(self.nx, self.pr, self.rank, self.params,
                      {k: v.copy() for k, v in self.arrays.items()})

    def total_energy(self) -> float:
        return float(self["e"].sum())

    def shadow_arrays(self, seed: float = 0.0) -> dict:
        """Fresh shadow arrays for every float field."""
        return {k: np.full_like(self.arrays[k], seed)
                for k in ALL_FLOAT_FIELDS}


def node_id(ix, iy, iz, ns):
    return ix + ns * (iy + ns * iz)


def build_domain(nx: int, pr: int = 1, rank: int = 0,
                 params: LuleshParams = DEFAULT_PARAMS) -> Domain:
    """Build one rank's domain of the global Sedov problem."""
    if not (0 <= rank < pr ** 3):
        raise ValueError(f"rank {rank} outside {pr}^3 rank cube")
    dom = Domain(nx, pr, rank, params)
    ns = nx + 1
    nelem, nnode = nx ** 3, ns ** 3
    rx, ry, rz = dom.coords
    h = dom.h
    g_side = pr * nx  # global elements per side

    # --- coordinates (global offsets) ---------------------------------
    ii = np.arange(ns)
    gx = (rx * nx + ii) * h
    gy = (ry * nx + ii) * h
    gz = (rz * nx + ii) * h
    arr = dom.arrays
    xs = np.empty(nnode)
    ys = np.empty(nnode)
    zs = np.empty(nnode)
    for iz in range(ns):
        for iy in range(ns):
            base = ns * (iy + ns * iz)
            xs[base:base + ns] = gx
            ys[base:base + ns] = gy[iy]
            zs[base:base + ns] = gz[iz]
    arr["x"], arr["y"], arr["z"] = xs, ys, zs

    for f in ("xd", "yd", "zd", "fx", "fy", "fz"):
        arr[f] = np.zeros(nnode)

    # --- connectivity ---------------------------------------------------
    nodelist = np.empty(8 * nelem, dtype=np.int64)
    eidx = 0
    for iz in range(nx):
        for iy in range(nx):
            for ix in range(nx):
                for k, (dx, dy, dz) in enumerate(HEX_CORNERS):
                    nodelist[8 * eidx + k] = node_id(ix + dx, iy + dy,
                                                     iz + dz, ns)
                eidx += 1
    arr["nodelist"] = nodelist

    # ELL-padded node -> corner-slot map; pad points at slot 8*nelem,
    # which every force kernel keeps zeroed.
    corner_ell = np.full(8 * nnode, 8 * nelem, dtype=np.int64)
    fill = np.zeros(nnode, dtype=np.int64)
    for slot in range(8 * nelem):
        n = nodelist[slot]
        corner_ell[8 * n + fill[n]] = slot
        fill[n] += 1
    assert fill.max() <= 8
    arr["corner_ell"] = corner_ell

    # element neighbours (self at domain borders, as in LULESH rank 0)
    def elem_id(ix, iy, iz):
        return ix + nx * (iy + nx * iz)

    lxim = np.empty(nelem, dtype=np.int64)
    lxip = np.empty(nelem, dtype=np.int64)
    letam = np.empty(nelem, dtype=np.int64)
    letap = np.empty(nelem, dtype=np.int64)
    lzetam = np.empty(nelem, dtype=np.int64)
    lzetap = np.empty(nelem, dtype=np.int64)
    for iz in range(nx):
        for iy in range(nx):
            for ix in range(nx):
                e = elem_id(ix, iy, iz)
                lxim[e] = elem_id(max(ix - 1, 0), iy, iz)
                lxip[e] = elem_id(min(ix + 1, nx - 1), iy, iz)
                letam[e] = elem_id(ix, max(iy - 1, 0), iz)
                letap[e] = elem_id(ix, min(iy + 1, nx - 1), iz)
                lzetam[e] = elem_id(ix, iy, max(iz - 1, 0))
                lzetap[e] = elem_id(ix, iy, min(iz + 1, nx - 1))
    arr["lxim"], arr["lxip"] = lxim, lxip
    arr["letam"], arr["letap"] = letam, letap
    arr["lzetam"], arr["lzetap"] = lzetam, lzetap

    # --- element state ---------------------------------------------------
    volo = np.full(nelem, h ** 3)
    arr["volo"] = volo
    arr["elem_mass"] = volo.copy()            # rho0 = 1
    arr["v"] = np.ones(nelem)
    arr["e"] = np.zeros(nelem)
    arr["q"] = np.zeros(nelem)
    arr["ss"] = np.zeros(nelem)
    arr["vdov"] = np.zeros(nelem)
    arr["delv"] = np.zeros(nelem)
    arr["arealg"] = np.full(nelem, h)

    # Sedov energy deposition in the global origin element.
    p = params
    if rank == 0:
        e0 = p.initial_energy
        if p.scale_energy_by_size:
            e0 = e0 * (h ** 3) / (DOMAIN_EDGE ** 3)
        arr["e"][0] = e0
    # Initial pressure consistent with the EOS.
    arr["p"] = np.maximum((p.gamma - 1.0) * arr["e"] / arr["v"], p.p_min)

    # --- nodal mass (global closed form on the uniform grid) ------------
    def adjacency(i_global, g_side_nodes):
        if i_global == 0 or i_global == g_side_nodes - 1:
            return 1
        return 2

    gsn = g_side + 1
    nodal_mass = np.empty(nnode)
    for iz in range(ns):
        for iy in range(ns):
            for ix in range(ns):
                gx_, gy_, gz_ = rx * nx + ix, ry * nx + iy, rz * nx + iz
                cnt = (adjacency(gx_, gsn) * adjacency(gy_, gsn)
                       * adjacency(gz_, gsn))
                nodal_mass[node_id(ix, iy, iz, ns)] = (h ** 3) * cnt / 8.0
    arr["nodal_mass"] = nodal_mass

    # --- symmetry boundary multipliers (global faces at 0) --------------
    def mask_for(axis_idx: int, rank_coord: int) -> np.ndarray:
        m = np.ones(nnode)
        if rank_coord == 0:
            for iz in range(ns):
                for iy in range(ns):
                    for ix in range(ns):
                        local = (ix, iy, iz)[axis_idx]
                        if local == 0:
                            m[node_id(ix, iy, iz, ns)] = 0.0
        return m

    arr["symm_x"] = mask_for(0, rx)
    arr["symm_y"] = mask_for(1, ry)
    arr["symm_z"] = mask_for(2, rz)

    # --- time state ------------------------------------------------------
    arr[TIME_FIELD] = np.array([0.0, p.dt_initial, 1e20, 1e20])

    return dom


def gather_global(domains: list[Domain]) -> Domain:
    """Assemble rank domains into the equivalent single global domain
    (for decomposition-invariance checks)."""
    pr = domains[0].pr
    nx = domains[0].nx
    g = build_domain(nx * pr, 1, 0, domains[0].params)
    ns_g = g.nnode_side
    for dom in domains:
        rx, ry, rz = dom.coords
        ns = dom.nnode_side
        for field_ in NODAL_FIELDS:
            src = dom[field_]
            dst = g[field_]
            for iz in range(ns):
                for iy in range(ns):
                    row = src[node_id(0, iy, iz, ns):
                              node_id(0, iy, iz, ns) + ns]
                    gbase = node_id(rx * nx, ry * nx + iy, rz * nx + iz,
                                    ns_g)
                    dst[gbase:gbase + ns] = row
        for field_ in ELEM_FIELDS:
            src = dom[field_]
            dst = g[field_]
            for iz in range(nx):
                for iy in range(nx):
                    row = src[nx * (iy + nx * iz): nx * (iy + nx * iz) + nx]
                    gbase = (rx * nx + (ry * nx + iy) * (nx * pr)
                             + (rz * nx + iz) * (nx * pr) ** 2)
                    dst[gbase:gbase + nx] = row
    return g
