"""Drivers: run LULESH variants forward, differentiate them, verify.

The measured quantities mirror the paper's: *forward* is the primal
run, *gradient* runs the generated derivative (which re-runs the primal
as its augmented forward pass), and *overhead* is gradient/forward in
simulated seconds (§VII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ...ad import ADConfig, Duplicated, autodiff_transform
from ...baselines.codipack import CoDiPackTape
from ...interp import ExecConfig, Executor
from ...parallel.mpi import SimMPI
from ...perf.machine import MachineModel, c6i_metal
from .kernels import FLAVORS, build_lulesh
from .mesh import (
    ALL_FIELDS,
    ALL_FLOAT_FIELDS,
    Domain,
    build_domain,
)
from .physics import DEFAULT_PARAMS, LuleshParams


def domain_args(dom: Domain, steps: int, shadows: Optional[dict] = None
                ) -> tuple:
    """Argument tuple in the variant function's order; when ``shadows``
    is given, each float field is followed by its shadow (the gradient
    signature)."""
    out = []
    for name in ALL_FIELDS:
        out.append(dom[name])
        if shadows is not None and name in ALL_FLOAT_FIELDS:
            out.append(shadows[name])
    out.append(steps)
    return tuple(out)


def gradient_activities() -> list:
    acts: list = []
    for name in ALL_FIELDS:
        acts.append(Duplicated if name in ALL_FLOAT_FIELDS else None)
    acts.append(None)  # steps
    return acts


@dataclass
class RunResult:
    time: float                  # simulated seconds
    clocks: list = field(default_factory=list)
    cost: object = None


class LuleshApp:
    """One built variant at one problem size."""

    def __init__(self, flavor: str, nx: int, pr: int = 1,
                 params: LuleshParams = DEFAULT_PARAMS,
                 ad_config: Optional[ADConfig] = None,
                 machine: Optional[MachineModel] = None,
                 sanitize: bool = False, backend: str = "interp",
                 fusion: bool = True,
                 compile_cache: Optional[str] = None,
                 adjoint: Optional[str] = None,
                 cc: Optional[str] = None) -> None:
        if flavor not in FLAVORS:
            raise ValueError(f"unknown flavor {flavor!r}; "
                             f"choose from {sorted(FLAVORS)}")
        self.flavor = FLAVORS[flavor]
        self.nx = nx
        self.pr = pr
        self.params = params
        self.machine = machine or c6i_metal()
        # The adjoint strategy rides on the time loop as a per-region
        # tag (so cache-all stays the global default for everything
        # else) and on ADConfig for fingerprinting.
        self.adjoint = adjoint
        self.module, self.fn = build_lulesh(
            flavor, nx, pr, params,
            time_loop_adjoint=adjoint if adjoint not in (None, "cache-all")
            else None)
        self.ad_config = ad_config or ADConfig()
        if adjoint is not None:
            self.ad_config.adjoint = adjoint
        if self.flavor.style == "julia":
            self.ad_config.cache_space = "gc"
        #: Run every execution under the dynamic race checker.
        self.sanitize = sanitize
        #: "interp", "compiled" or "native" (see ExecConfig.backend).
        self.backend = backend
        #: Trace fusion / persistent compile cache / C compiler
        #: (compiled + native backends).
        self.fusion = fusion
        self.compile_cache = compile_cache
        self.cc = cc
        #: Backend counters from the most recent single-rank run
        #: (None for MPI flavors or the interp backend).
        self.last_compile_stats: Optional[dict] = None
        #: Managed-loop / fallback report from the AD run (set by
        #: grad_fn; see repro.ad.strategy.select_managed_loops).
        self.adjoint_report: Optional[dict] = None
        #: Peak/live AD-cache bytes of the most recent single-rank
        #: gradient run.
        self.last_adjoint_stats: Optional[dict] = None
        self._grad: Optional[str] = None

    def region_report(self) -> dict:
        """Statement-level native-region claimability report for this
        flavor's kernel (``repro.passes.regioncheck``); the payload
        ``summarize --region-report`` renders."""
        from ...passes.regioncheck import region_report
        return region_report(self.module.functions[self.fn], self.module)

    # ------------------------------------------------------------------
    @property
    def nprocs(self) -> int:
        return self.pr ** 3

    def make_domains(self, background_energy: float = 0.0) -> list[Domain]:
        """Build the rank domains.  ``background_energy`` adds a uniform
        positive energy floor: it moves the initial state off the
        p ≥ 0 / ss = sqrt(p) kinks, which finite differences straddle
        while AD takes a one-sided subgradient (used by the §VII
        verification; physics-shape runs use the raw Sedov state)."""
        doms = [build_domain(self.nx, self.pr, r, self.params)
                for r in range(self.nprocs)]
        if background_energy:
            g = self.params.gamma
            for d in doms:
                d["e"][...] += background_energy
                d["p"][...] = np.maximum(
                    (g - 1.0) * d["e"] / d["v"], self.params.p_min)
        return doms

    def grad_fn(self) -> str:
        if self._grad is None:
            tr = autodiff_transform(self.module, self.fn,
                                    gradient_activities(), self.ad_config)
            self._grad = tr.grad_name
            self.adjoint_report = tr.adjoint_report
        return self._grad

    def _config(self, num_threads: int) -> ExecConfig:
        impl = "mpich" if self.flavor.style == "julia" else "openmpi"
        return ExecConfig(num_threads=num_threads, machine=self.machine,
                          mpi_impl=impl, sanitize=self.sanitize,
                          backend=self.backend, fusion=self.fusion,
                          compile_cache=self.compile_cache, cc=self.cc)

    # ------------------------------------------------------------------
    def run_forward(self, domains: list[Domain], steps: int,
                    num_threads: int = 1) -> RunResult:
        if self.flavor.mpi:
            engine = SimMPI(self.module, self.nprocs,
                            self._config(num_threads), self.machine)
            res = engine.run(self.fn, lambda r: domain_args(
                domains[r], steps))
            return RunResult(res.time, res.clocks, res.total_cost)
        ex = Executor(self.module, self._config(num_threads))
        ex.run(self.fn, *domain_args(domains[0], steps))
        self.last_compile_stats = ex.compile_stats()
        return RunResult(ex.clock, [ex.clock], ex.cost)

    def run_gradient(self, domains: list[Domain], steps: int,
                     num_threads: int = 1,
                     shadows: Optional[list[dict]] = None) -> RunResult:
        """Run the Enzyme-generated gradient.  ``shadows`` default to
        the paper's projection seeding (every shadow = 1)."""
        grad = self.grad_fn()
        if shadows is None:
            shadows = [d.shadow_arrays(seed=1.0) for d in domains]
        if self.flavor.mpi:
            engine = SimMPI(self.module, self.nprocs,
                            self._config(num_threads), self.machine)
            res = engine.run(grad, lambda r: domain_args(
                domains[r], steps, shadows[r]))
            return RunResult(res.time, res.clocks, res.total_cost)
        ex = Executor(self.module, self._config(num_threads))
        ex.run(grad, *domain_args(domains[0], steps, shadows[0]))
        self.last_compile_stats = ex.compile_stats()
        self.last_adjoint_stats = ex.adjoint_stats()
        return RunResult(ex.clock, [ex.clock], ex.cost)

    # ------------------------------------------------------------------
    def run_codipack_forward(self, domains: list[Domain], steps: int
                             ) -> tuple[RunResult, list[CoDiPackTape]]:
        """The baseline's *forward*: the primal recorded onto the tape
        (the rewritten-to-AD-types application the paper benchmarks)."""
        tapes: list[CoDiPackTape] = [None] * max(1, self.nprocs)

        def make_gen(r, ex):
            tape = CoDiPackTape(ex.interp)
            ex.interp.tape = tape
            tapes[r] = tape
            args = domain_args(domains[r], steps)
            wrapped = ex.wrap_args(self.fn, args)
            for name in ("x", "y", "z", "e"):
                tape.register_input(domains[r][name])
            return ex.interp.call_generator(self.fn, wrapped)

        if self.flavor.mpi:
            engine = SimMPI(self.module, self.nprocs, self._config(1),
                            self.machine)
            res = engine.run_custom(make_gen)
            return RunResult(res.time, res.clocks, res.total_cost), tapes
        ex = Executor(self.module, self._config(1))
        for ev in make_gen(0, ex):
            raise RuntimeError(f"unexpected MPI event {ev!r}")
        ex.interp.flush_serial()
        return RunResult(ex.clock, [ex.clock], ex.cost), tapes

    def run_codipack_gradient(self, domains: list[Domain], steps: int
                              ) -> tuple[RunResult, list[CoDiPackTape]]:
        """Baseline: the primal under operator-overloading taping plus
        tape reversal with adjoint MPI (num_threads is forcibly 1 —
        CoDiPack cannot record threaded runs)."""
        tapes: list[CoDiPackTape] = [None] * max(1, self.nprocs)

        def make_gen(r, ex):
            tape = CoDiPackTape(ex.interp)
            ex.interp.tape = tape
            tapes[r] = tape
            args = domain_args(domains[r], steps)
            wrapped = ex.wrap_args(self.fn, args)
            for name in ("x", "y", "z", "e"):
                tape.register_input(domains[r][name])

            def gen():
                yield from ex.interp.call_generator(self.fn, wrapped)
                tape.seed_buffer(domains[r]["e"])
                yield from tape.reverse_generator()
            return gen()

        if self.flavor.mpi:
            engine = SimMPI(self.module, self.nprocs, self._config(1),
                            self.machine)
            res = engine.run_custom(make_gen)
            return RunResult(res.time, res.clocks, res.total_cost), tapes
        ex = Executor(self.module, self._config(1))
        gen = make_gen(0, ex)
        for ev in gen:
            raise RuntimeError(f"unexpected MPI event {ev!r}")
        ex.interp.flush_serial()
        return RunResult(ex.clock, [ex.clock], ex.cost), tapes

    # ------------------------------------------------------------------
    @staticmethod
    def final_report(domains: list[Domain]) -> dict:
        """LULESH-style end-of-run summary (the quantities the original
        prints as its correctness check [18])."""
        import numpy as np
        total_e = sum(float(d["e"].sum()) for d in domains)
        max_abs_v = max(float(np.max(np.abs(np.concatenate(
            [d["xd"], d["yd"], d["zd"]])))) for d in domains)
        ts = domains[0]["timestate"]
        return {
            "final_origin_energy": float(domains[0]["e"][0]),
            "total_energy": total_e,
            "max_abs_velocity": max_abs_v,
            "max_pressure": max(float(d["p"].max()) for d in domains),
            "elapsed_time": float(ts[0]),
            "dt": float(ts[1]),
        }

    # ------------------------------------------------------------------
    def projection_check(self, steps: int, num_threads: int = 1,
                         eps: float = 1e-6,
                         background_energy: float = 1.0e4
                         ) -> tuple[float, float]:
        """§VII verification: all-ones reverse projection vs. central
        finite differences over the initial (x, y, z, e) fields.

        Run at a smooth base point (positive background energy) so the
        two-sided finite difference and the one-sided AD subgradient
        measure the same thing.
        """
        wrt = ("x", "y", "z", "e")
        seed_fields = ALL_FLOAT_FIELDS

        def primal_value(delta: float) -> float:
            doms = self.make_domains(background_energy)
            for d in doms:
                for f in wrt:
                    d[f][...] += delta
            self.run_forward(doms, steps, num_threads)
            return sum(float(sum(d[f].sum() for f in seed_fields))
                       for d in doms)

        fd = (primal_value(eps) - primal_value(-eps)) / (2 * eps)

        doms = self.make_domains(background_energy)
        shadows = [d.shadow_arrays(seed=1.0) for d in doms]
        self.run_gradient(doms, steps, num_threads, shadows)
        rev = sum(float(sum(sh[f].sum() for f in wrt))
                  for sh in shadows)
        return rev, fd


def main(argv: Optional[list] = None) -> int:
    """CLI: run one LULESH variant forward and/or as a gradient.

    ``--adjoint`` selects the time-loop adjoint strategy; the JSON
    report includes the strategy report (managed loops and cache-all
    fallbacks with reasons) plus peak AD-cache bytes, the numbers the
    ``summarize --adjoint-report`` renderer consumes.
    """
    import argparse
    import json
    import sys

    ap = argparse.ArgumentParser(
        prog="python -m repro.apps.lulesh.driver",
        description="Run a LULESH variant (forward and gradient).")
    ap.add_argument("--flavor", default="serial", choices=sorted(FLAVORS))
    ap.add_argument("--nx", type=int, default=3, help="elements per edge")
    ap.add_argument("--pr", type=int, default=1, help="ranks per edge "
                    "(MPI flavors)")
    ap.add_argument("--steps", type=int, default=8,
                    help="time-loop steps")
    ap.add_argument("--adjoint", default=None,
                    choices=["cache-all", "checkpoint", "implicit"],
                    help="adjoint strategy for the time loop "
                         "(default: the engine's cache-all plan)")
    ap.add_argument("--backend", default="interp",
                    choices=["interp", "compiled", "native"])
    ap.add_argument("--cc", default=None,
                    help="C compiler for --backend native (default: $CC, "
                         "then cc/gcc/clang)")
    ap.add_argument("--threads", type=int, default=1)
    ap.add_argument("--forward-only", action="store_true",
                    help="skip the gradient run")
    ap.add_argument("--json", action="store_true",
                    help="emit the raw report as JSON")
    ap.add_argument("--region-report", action="store_true",
                    help="include the native-region claimability "
                         "report (regioncheck) in the output")
    args = ap.parse_args(argv)

    app = LuleshApp(args.flavor, args.nx, pr=args.pr,
                    backend=args.backend, adjoint=args.adjoint,
                    cc=args.cc)
    doms = app.make_domains()
    fwd = app.run_forward(doms, args.steps, args.threads)
    report = {
        "flavor": args.flavor, "nx": args.nx, "steps": args.steps,
        "backend": args.backend, "adjoint": args.adjoint or "cache-all",
        "forward_time": fwd.time,
        "final": app.final_report(doms),
    }
    if not args.forward_only:
        doms = app.make_domains()
        grad = app.run_gradient(doms, args.steps, args.threads)
        report["gradient_time"] = grad.time
        report["overhead"] = grad.time / fwd.time if fwd.time else None
        report["adjoint_report"] = app.adjoint_report
        report["adjoint_stats"] = app.last_adjoint_stats
    if args.region_report:
        rep = app.region_report()
        if args.json:
            report["region_report"] = rep
        else:
            from ...tools.summarize import render_region_report
            print(render_region_report(rep))
    if args.json:
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for k, v in report.items():
            print(f"{k}: {v}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
