"""Plain-NumPy reference implementation of the LULESH proxy physics.

Serves as ground truth for every IR variant: the formulas, clamp
order, and reduction semantics here are mirrored *operation for
operation* by :mod:`repro.apps.lulesh.kernels`, so a single-rank IR run
must match this to machine precision, and decomposed runs must match
after ghost-force summation.
"""

from __future__ import annotations

import numpy as np

from .mesh import Domain
from .physics import HEX_CORNERS, HEX_FACES, LuleshParams


def _corner_coords(dom: Domain, field: str) -> np.ndarray:
    """(nelem, 8) array of a nodal field gathered at element corners."""
    nodelist = dom["nodelist"].reshape(-1, 8)
    return dom[field][nodelist]


def _face_geometry(cx, cy, cz):
    """Outward area vectors and centroids of the six hex faces.

    Input: (nelem, 8) corner coordinates.  Returns two (nelem, 6, 3)
    arrays: area vectors (0.5 · d1 × d2 over the diagonals) and
    centroids.
    """
    nelem = cx.shape[0]
    A = np.empty((nelem, 6, 3))
    C = np.empty((nelem, 6, 3))
    for f, (a, b, c, d) in enumerate(HEX_FACES):
        d1x = cx[:, c] - cx[:, a]
        d1y = cy[:, c] - cy[:, a]
        d1z = cz[:, c] - cz[:, a]
        d2x = cx[:, d] - cx[:, b]
        d2y = cy[:, d] - cy[:, b]
        d2z = cz[:, d] - cz[:, b]
        A[:, f, 0] = 0.5 * (d1y * d2z - d1z * d2y)
        A[:, f, 1] = 0.5 * (d1z * d2x - d1x * d2z)
        A[:, f, 2] = 0.5 * (d1x * d2y - d1y * d2x)
        C[:, f, 0] = 0.25 * (cx[:, a] + cx[:, b] + cx[:, c] + cx[:, d])
        C[:, f, 1] = 0.25 * (cy[:, a] + cy[:, b] + cy[:, c] + cy[:, d])
        C[:, f, 2] = 0.25 * (cz[:, a] + cz[:, b] + cz[:, c] + cz[:, d])
    return A, C


def elem_volume(cx, cy, cz) -> np.ndarray:
    """Divergence-theorem hexahedron volume: V = (1/3) Σ_f c_f · A_f.

    Accumulated face by face in a fixed order so the IR emission can
    reproduce the same rounding.
    """
    A, C = _face_geometry(cx, cy, cz)
    return _volume_from_faces(A, C)


def _volume_from_faces(A, C) -> np.ndarray:
    vol = np.zeros(A.shape[0])
    for f in range(6):
        vol = vol + (C[:, f, 0] * A[:, f, 0] + C[:, f, 1] * A[:, f, 1]
                     + C[:, f, 2] * A[:, f, 2])
    return vol / 3.0


def calc_time_constraints(dom: Domain) -> tuple[float, float]:
    p = dom.params
    ssc = np.maximum(dom["ss"], p.ss_floor)
    dtcourant = float(np.min(dom["arealg"] / ssc)) * p.cfl_courant
    dthydro = float(np.min(p.cfl_hydro /
                           (np.abs(dom["vdov"]) + p.dvov_min)))
    return dtcourant, dthydro


def compute_dt_candidate(dom: Domain, step: int) -> float:
    """This rank's local new-dt candidate (pre-allreduce)."""
    p = dom.params
    ts = dom["timestate"]
    if step == 0:
        return p.dt_initial
    dtcourant, dthydro = calc_time_constraints(dom)
    ts[2], ts[3] = dtcourant, dthydro
    return min(dtcourant, dthydro, ts[1] * p.dt_mult_ub, p.dt_max)


def calc_force_for_nodes(dom: Domain) -> None:
    p = dom.params
    nelem = dom.nelem
    cx = _corner_coords(dom, "x")
    cy = _corner_coords(dom, "y")
    cz = _corner_coords(dom, "z")
    A, _C = _face_geometry(cx, cy, cz)
    sig = dom["p"] + dom["q"]          # isotropic stress magnitude

    corner_f = np.zeros((nelem, 8, 3))
    for f, face in enumerate(HEX_FACES):
        for k in face:
            corner_f[:, k, 0] += sig * A[:, f, 0] * 0.25
            corner_f[:, k, 1] += sig * A[:, f, 1] * 0.25
            corner_f[:, k, 2] += sig * A[:, f, 2] * 0.25

    # Hourglass-like viscous damping toward the element-mean velocity.
    vx = _corner_coords(dom, "xd")
    vy = _corner_coords(dom, "yd")
    vz = _corner_coords(dom, "zd")
    rate = p.hgcoef * dom["elem_mass"] * np.maximum(dom["ss"], p.ss_floor) \
        / (dom["arealg"] + p.ss_floor)
    for comp, vel in ((0, vx), (1, vy), (2, vz)):
        s = vel[:, 0]
        for k in range(1, 8):
            s = s + vel[:, k]
        mean = s * 0.125
        corner_f[:, :, comp] -= rate[:, None] * (vel - mean[:, None])

    # Scatter corner forces to nodes through the padded corner map
    # (sequential 8-way accumulation, matching the IR emission order).
    ell = dom["corner_ell"].reshape(-1, 8)
    for comp, field in ((0, "fx"), (1, "fy"), (2, "fz")):
        flat = np.concatenate([corner_f[:, :, comp].ravel(), [0.0]])
        gathered = flat[ell]
        s = gathered[:, 0]
        for k in range(1, 8):
            s = s + gathered[:, k]
        dom[field][:] = s


def exchange_forces(domains: list[Domain]) -> None:
    """Dimension-ordered summation of duplicated-plane nodal forces
    (the CommSBN step).  Operates on all ranks at once — the reference
    has no network."""
    if len(domains) == 1:
        return
    pr = domains[0].pr
    nx = domains[0].nx
    ns = nx + 1

    def rank_of(rx, ry, rz):
        return rx + pr * (ry + pr * rz)

    from .mesh import node_id
    for axis in range(3):
        for rz in range(pr):
            for ry in range(pr):
                for rx in range(pr):
                    coords = [rx, ry, rz]
                    if coords[axis] == pr - 1:
                        continue
                    lo = domains[rank_of(rx, ry, rz)]
                    hi_c = list(coords)
                    hi_c[axis] += 1
                    hi = domains[rank_of(*hi_c)]
                    for field in ("fx", "fy", "fz"):
                        lo_plane, hi_plane = _plane_ids(axis, ns)
                        s = lo[field][lo_plane] + hi[field][hi_plane]
                        lo[field][lo_plane] = s
                        hi[field][hi_plane] = s


_plane_cache: dict = {}


def _plane_ids(axis: int, ns: int):
    key = (axis, ns)
    if key in _plane_cache:
        return _plane_cache[key]
    from .mesh import node_id
    lo = np.empty(ns * ns, dtype=np.int64)
    hi = np.empty(ns * ns, dtype=np.int64)
    k = 0
    for b in range(ns):
        for a in range(ns):
            if axis == 0:
                lo[k] = node_id(ns - 1, a, b, ns)
                hi[k] = node_id(0, a, b, ns)
            elif axis == 1:
                lo[k] = node_id(a, ns - 1, b, ns)
                hi[k] = node_id(a, 0, b, ns)
            else:
                lo[k] = node_id(a, b, ns - 1, ns)
                hi[k] = node_id(a, b, 0, ns)
            k += 1
    _plane_cache[key] = (lo, hi)
    return lo, hi


def integrate_nodes(dom: Domain, dt: float) -> None:
    p = dom.params
    for fcomp, vcomp, ccomp, mask in (
            ("fx", "xd", "x", "symm_x"),
            ("fy", "yd", "y", "symm_y"),
            ("fz", "zd", "z", "symm_z")):
        acc = dom[fcomp] / dom["nodal_mass"]
        acc = acc * dom[mask]
        vnew = dom[vcomp] + acc * dt
        vnew = np.where(np.abs(vnew) < p.u_cut, 0.0, vnew)
        dom[vcomp][:] = vnew
        dom[ccomp][:] = dom[ccomp] + vnew * dt


def calc_lagrange_elements(dom: Domain) -> None:
    cx = _corner_coords(dom, "x")
    cy = _corner_coords(dom, "y")
    cz = _corner_coords(dom, "z")
    A, C = _face_geometry(cx, cy, cz)
    vol = _volume_from_faces(A, C)
    vnew = vol / dom["volo"]
    dom["delv"][:] = vnew - dom["v"]
    dom["arealg"][:] = np.cbrt(vol)

    vx = _corner_coords(dom, "xd")
    vy = _corner_coords(dom, "yd")
    vz = _corner_coords(dom, "zd")
    dvdt = np.zeros(dom.nelem)
    for f, (a, b, c, d) in enumerate(HEX_FACES):
        fvx = 0.25 * (vx[:, a] + vx[:, b] + vx[:, c] + vx[:, d])
        fvy = 0.25 * (vy[:, a] + vy[:, b] + vy[:, c] + vy[:, d])
        fvz = 0.25 * (vz[:, a] + vz[:, b] + vz[:, c] + vz[:, d])
        dvdt += fvx * A[:, f, 0] + fvy * A[:, f, 1] + fvz * A[:, f, 2]
    dom["vdov"][:] = dvdt / vol
    dom.arrays["_vnew"] = vnew
    dom.arrays["_vol"] = vol


def calc_q_for_elems(dom: Domain) -> None:
    p = dom.params
    vnew = dom.arrays["_vnew"]
    rho = dom["elem_mass"] / (dom["volo"] * vnew)
    dvov = dom["vdov"]
    l = dom["arealg"]
    ssc = np.maximum(dom["ss"], p.ss_floor)
    qq = rho * l * np.abs(dvov) * (p.qlc * ssc + p.qqc * l * np.abs(dvov))
    q = np.where(dvov < 0.0, qq, 0.0)
    if p.use_monoq_limiter:
        # Monotonic limiter: scale q by a smoothness factor phi built
        # from neighbour compression ratios through the lxim/.../lzetap
        # indirection (the unstructured data movement of the original's
        # CalcMonotonicQ).
        phi = np.zeros(dom.nelem)
        safe = np.where(np.abs(dvov) > p.dvov_min, dvov, p.dvov_min)
        for lo_n, hi_n in (("lxim", "lxip"), ("letam", "letap"),
                           ("lzetam", "lzetap")):
            r_lo = dvov[dom[lo_n]] / safe
            r_hi = dvov[dom[hi_n]] / safe
            axis_phi = 0.5 * (r_lo + r_hi)
            axis_phi = np.minimum(axis_phi, np.minimum(
                p.monoq_limiter * r_lo, p.monoq_limiter * r_hi))
            axis_phi = np.minimum(axis_phi, p.monoq_max_slope)
            axis_phi = np.maximum(axis_phi, 0.0)
            phi = phi + axis_phi
        phi = phi * (1.0 / 3.0)
        q = q * np.maximum(1.0 - phi, 0.0)
    dom["q"][:] = np.minimum(q, p.q_stop)


def eval_eos(dom: Domain) -> None:
    p = dom.params
    vnew = dom.arrays["_vnew"]
    e_old, p_old, q_new = dom["e"], dom["p"], dom["q"]
    delv = dom["delv"]

    e_half = np.maximum(e_old - 0.5 * delv * (p_old + q_new), p.e_min)
    p_half = np.maximum((p.gamma - 1.0) * e_half / vnew, p.p_min)
    e_new = e_old - 0.5 * delv * (p_old + p_half + 2.0 * q_new)
    e_new = np.maximum(e_new, p.e_min)
    e_new = np.where(np.abs(e_new) < p.pressure_floor, 0.0, e_new)
    p_new = np.maximum((p.gamma - 1.0) * e_new / vnew, p.p_min)
    p_new = np.where(np.abs(p_new) < p.pressure_floor, 0.0, p_new)
    ss = np.sqrt(np.maximum(p.gamma * p_new * vnew, p.ss_floor ** 2))

    dom["e"][:] = e_new
    dom["p"][:] = p_new
    dom["ss"][:] = ss
    v = np.where(np.abs(vnew - 1.0) < p.v_cut, 1.0, vnew)
    dom["v"][:] = v


def lagrange_leapfrog(domains: list[Domain] | Domain, steps: int) -> None:
    """Run ``steps`` timesteps (all ranks lock-step, like the IR+SimMPI
    run).  Accepts one domain or the full rank list."""
    if isinstance(domains, Domain):
        domains = [domains]
    for s in range(steps):
        dt = min(compute_dt_candidate(dom, s) for dom in domains)
        for dom in domains:              # the allreduce-min commit
            dom["timestate"][1] = dt
            dom["timestate"][0] += dt
        for dom in domains:
            calc_force_for_nodes(dom)
        exchange_forces(domains)
        for dom in domains:
            integrate_nodes(dom, dt)
            calc_lagrange_elements(dom)
            calc_q_for_elems(dom)
            eval_eos(dom)
