"""repro.apps — the paper's proxy applications (LULESH, miniBUDE)."""
