"""Result reporting: paper-style tables and ASCII scaling plots.

Used by the benchmark harness and the examples to render the series the
paper plots (runtime, speedup T1/Tn, efficiency, overhead) from raw
(configuration → simulated seconds) measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass
class Series:
    """One line of a scaling figure: label + (x, seconds) points."""

    label: str
    points: dict = field(default_factory=dict)   # x -> seconds

    def add(self, x, seconds: float) -> None:
        self.points[x] = seconds

    @property
    def xs(self) -> list:
        return sorted(self.points)

    def speedup(self) -> "Series":
        base = self.points[self.xs[0]]
        out = Series(self.label + " speedup")
        for x in self.xs:
            out.add(x, base / self.points[x])
        return out

    def efficiency(self) -> "Series":
        sp = self.speedup()
        base_x = self.xs[0]
        out = Series(self.label + " efficiency")
        for x in sp.xs:
            out.add(x, sp.points[x] * base_x / x)
        return out

    def overhead_against(self, primal: "Series") -> "Series":
        out = Series(self.label + " overhead")
        for x in self.xs:
            if x in primal.points:
                out.add(x, self.points[x] / primal.points[x])
        return out


def format_table(title: str, columns: Sequence[str],
                 rows: Sequence[Sequence]) -> str:
    def fmt(v) -> str:
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) >= 1000 or abs(v) < 1e-3:
                return f"{v:.3e}"
            return f"{v:.3f}"
        return str(v)

    str_rows = [[fmt(v) for v in r] for r in rows]
    widths = [max(len(c), *(len(r[i]) for r in str_rows)) if str_rows
              else len(c) for i, c in enumerate(columns)]
    lines = [f"== {title} ==",
             "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
             "  ".join("-" * w for w in widths)]
    for r in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def ascii_plot(series_list: Sequence[Series], title: str = "",
               width: int = 60, height: int = 16,
               logx: bool = True, value: str = "speedup") -> str:
    """A crude log-x scatter of scaling series (one marker per series)."""
    marks = "ox+*#@%&"
    pts = []
    for si, s in enumerate(series_list):
        src = s.speedup() if value == "speedup" else s
        for x in src.xs:
            pts.append((x, src.points[x], marks[si % len(marks)]))
    if not pts:
        return f"{title}\n(no data)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]

    def tx(x):
        if logx:
            lo, hi = math.log2(min(xs)), math.log2(max(max(xs), min(xs) + 1))
            t = (math.log2(x) - lo) / max(hi - lo, 1e-9)
        else:
            t = (x - min(xs)) / max(max(xs) - min(xs), 1e-9)
        return min(width - 1, int(t * (width - 1)))

    ymax = max(ys) * 1.05
    grid = [[" "] * width for _ in range(height)]
    for x, y, m in pts:
        r = height - 1 - min(height - 1, int(y / ymax * (height - 1)))
        grid[r][tx(x)] = m
    lines = [title] if title else []
    lines.append(f"{ymax:8.2f} ┤" + "")
    for row in grid:
        lines.append("         │" + "".join(row))
    lines.append("         └" + "─" * width)
    legend = "   ".join(f"{marks[i % len(marks)]}={s.label}"
                        for i, s in enumerate(series_list))
    lines.append("           " + legend)
    return "\n".join(lines)
