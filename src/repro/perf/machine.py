"""Machine model: converts instruction counts into simulated seconds.

The model is calibrated to the paper's testbed — an AWS ``c6i.metal``
instance: dual-socket Intel Xeon Platinum 8375C, 32 cores per socket at
2.9 GHz, 256 GB RAM, hyper-threading and Turbo Boost disabled (§VII-e).

The three phenomena the evaluation hinges on are all first-class here:

* **Socket/NUMA boundary** — past one socket (more than 32 threads, or
  more than 27 MPI ranks in the cube decompositions), memory time pays a
  NUMA penalty; this produces the speedup bend the paper observes after
  27 ranks / 32 threads.
* **Shared memory bandwidth (roofline)** — threads on a socket share its
  bandwidth, so cache-heavy gradient code (e.g. miniBUDE without
  OpenMPOpt) loses scaling while compute-bound code does not.
* **Network α/β per MPI implementation** — OpenMPI (C++) vs MPICH
  (Julia) get different constants, reproducing the paper's note that the
  LULESH.jl gap is attributable to the MPI implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .cost import CostVector


@dataclass
class MPINetwork:
    """LogGP-flavoured network constants (seconds / seconds-per-byte)."""
    alpha: float = 1.5e-6
    beta: float = 1.0e-10  # 10 GB/s

    def ptp_time(self, nbytes: float) -> float:
        return self.alpha + nbytes * self.beta

    def allreduce_time(self, nbytes: float, nprocs: int) -> float:
        if nprocs <= 1:
            return 0.0
        stages = math.ceil(math.log2(nprocs))
        return stages * (2.0 * self.alpha + nbytes * self.beta)

    def bcast_time(self, nbytes: float, nprocs: int) -> float:
        if nprocs <= 1:
            return 0.0
        stages = math.ceil(math.log2(nprocs))
        return stages * (self.alpha + nbytes * self.beta)


@dataclass
class MachineModel:
    # Core compute rates (seconds per abstract op).
    flop_time: float = 0.45e-9
    div_time: float = 3.2e-9
    special_time: float = 9.0e-9
    int_time: float = 0.30e-9
    call_time: float = 4.0e-9

    # Memory system.
    per_core_bw: float = 13.0e9       # bytes/s sustainable by one core
    socket_bw: float = 85.0e9         # bytes/s shared per socket
    cores_per_socket: int = 32
    sockets: int = 2
    numa_penalty: float = 1.38        # memory-time factor when spanning sockets
    cache_hit_fraction: float = 0.72  # fraction of traffic served by cache

    # Synchronization costs (LLVM OpenMP runtime-calibrated).
    atomic_base: float = 6.0e-9
    atomic_contention: float = 0.25e-9   # extra per concurrent thread
    reduction_op_time: float = 1.2e-9
    fork_base: float = 1.0e-6
    fork_per_thread: float = 0.04e-6
    barrier_base: float = 0.3e-6
    task_overhead: float = 1.2e-6

    # Operator-overloading (CoDiPack-model) taping constants.
    tape_op_time: float = 12.0e-9
    tape_bw: float = 18.0e9

    # Per-implementation MPI constants.
    networks: dict = field(default_factory=lambda: {
        "openmpi": MPINetwork(alpha=1.4e-6, beta=0.95e-10),
        "mpich": MPINetwork(alpha=2.6e-6, beta=1.55e-10),
    })
    default_network: str = "openmpi"
    #: Messages above this many bytes use rendezvous (sender blocks
    #: until the receive is posted) in SimMPI; None keeps every
    #: blocking send eager/buffered.
    eager_limit: int | None = None

    max_cores: int = 64

    # ------------------------------------------------------------------
    def network(self, impl: str | None = None) -> MPINetwork:
        return self.networks.get(impl or self.default_network,
                                 self.networks[self.default_network])

    def _sockets_used(self, nprocs: int) -> int:
        return 1 if nprocs <= self.cores_per_socket else self.sockets

    def effective_bw(self, nprocs: int) -> float:
        """Per-process memory bandwidth with ``nprocs`` busy cores."""
        nprocs = max(1, nprocs)
        used = self._sockets_used(nprocs)
        per_socket = max(1, math.ceil(nprocs / used))
        bw = min(self.per_core_bw, self.socket_bw / per_socket)
        if used > 1:
            bw /= self.numa_penalty
        return bw

    # ------------------------------------------------------------------
    def compute_time(self, cost: CostVector) -> float:
        return (cost.flops * self.flop_time
                + cost.divs * self.div_time
                + cost.specials * self.special_time
                + cost.int_ops * self.int_time
                + cost.calls * self.call_time)

    def memory_time(self, cost: CostVector, nprocs: int = 1) -> float:
        dram_bytes = cost.mem_bytes * (1.0 - self.cache_hit_fraction)
        t = dram_bytes / self.effective_bw(nprocs)
        if cost.tape_bytes:
            t += cost.tape_bytes / self.tape_bw
        return t

    def stream_time(self, cost: CostVector, nprocs: int = 1) -> float:
        """AD value-cache traffic: streams to DRAM with no cache-hit
        discount and does not overlap the dependent compute (the reverse
        sweep gathers cached values on its critical path).  Because the
        socket bandwidth is shared, this term is what erodes gradient
        scaling for cache-heavy derivatives (miniBUDE without OpenMPOpt,
        §VIII)."""
        if not cost.stream_bytes:
            return 0.0
        return cost.stream_bytes / self.effective_bw(nprocs)

    def atomic_time(self, cost: CostVector, nthreads: int = 1) -> float:
        per = self.atomic_base + self.atomic_contention * max(0, nthreads - 1)
        return cost.atomic_ops * per + cost.reduction_ops * self.reduction_op_time

    def tape_time(self, cost: CostVector) -> float:
        return cost.tape_ops * self.tape_op_time

    def serial_time(self, cost: CostVector, nprocs: int = 1) -> float:
        """Time for a serial code segment with ``nprocs`` active ranks."""
        return (max(self.compute_time(cost), self.memory_time(cost, nprocs))
                + self.stream_time(cost, nprocs)
                + self.atomic_time(cost, 1)
                + self.tape_time(cost))

    def thread_time(self, cost: CostVector, nthreads: int,
                    nprocs: int = 1) -> float:
        """Time one thread needs for ``cost`` with the region's contention."""
        busy = max(1, nthreads * max(1, nprocs))
        return (max(self.compute_time(cost), self.memory_time(cost, busy))
                + self.stream_time(cost, busy)
                + self.atomic_time(cost, nthreads)
                + self.tape_time(cost))

    def phase_time(self, thread_costs: list[CostVector], nthreads: int,
                   nprocs: int = 1) -> float:
        """Makespan of one barrier-to-barrier phase (no fork overhead)."""
        worst = 0.0
        for c in thread_costs:
            t = self.thread_time(c, nthreads, nprocs)
            if t > worst:
                worst = t
        return worst + self.barrier_time(nthreads)

    def parallel_region_time(self, thread_costs: list[CostVector],
                             nthreads: int, nprocs: int = 1) -> float:
        """Makespan of a parallel region executed by ``nthreads`` threads.

        ``thread_costs`` holds one CostVector per simulated thread (some
        may be empty).  ``nprocs`` is the number of MPI ranks also active
        on the node (hybrid runs): total busy cores = nthreads * nprocs.
        """
        return (self.phase_time(thread_costs, nthreads, nprocs)
                + self.fork_overhead(nthreads))

    def fork_overhead(self, nthreads: int) -> float:
        return self.fork_base + self.fork_per_thread * max(0, nthreads - 1)

    def barrier_time(self, nthreads: int) -> float:
        if nthreads <= 1:
            return 0.0
        return self.barrier_base * math.ceil(math.log2(nthreads))


def c6i_metal() -> MachineModel:
    """The paper's evaluation machine (§VII-e)."""
    return MachineModel()


def uncontended() -> MachineModel:
    """A machine with no bandwidth sharing or NUMA effects.

    Useful in tests to isolate algorithmic scaling from memory effects.
    """
    return MachineModel(socket_bw=1e15, per_core_bw=1e15, numa_penalty=1.0,
                        atomic_contention=0.0)
