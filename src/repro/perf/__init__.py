"""repro.perf — instruction-cost accounting and the simulated machine.

Numerics in this reproduction are computed for real; *time* is modeled.
The interpreter produces :class:`~repro.perf.cost.CostVector` counts per
serial segment / per thread / per rank, and the
:class:`~repro.perf.machine.MachineModel` (calibrated to the paper's
AWS c6i.metal testbed) converts them into simulated seconds, including
socket/NUMA effects, shared memory bandwidth, atomics contention, fork
and task overheads, and per-MPI-implementation network constants.
"""

from .cost import CostVector
from .machine import MachineModel, MPINetwork, c6i_metal, uncontended

__all__ = ["CostVector", "MachineModel", "MPINetwork", "c6i_metal",
           "uncontended"]
