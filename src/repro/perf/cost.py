"""Instruction-cost accounting.

The interpreter executes programs *numerically for real* but measures
work in abstract instruction counts; :mod:`repro.perf.machine` converts
those counts into simulated seconds.  This separation is what lets a
Python interpreter reproduce the *shape* of the paper's scaling results:
the numerics are exact, the clock is modeled.
"""

from __future__ import annotations


class CostVector:
    """Counts of abstract machine work performed by a code region."""

    __slots__ = ("flops", "divs", "specials", "int_ops", "load_bytes",
                 "store_bytes", "stream_bytes", "atomic_ops",
                 "reduction_ops", "calls", "tape_ops", "tape_bytes",
                 "alloc_bytes")

    def __init__(self) -> None:
        self.flops = 0.0
        self.divs = 0.0
        self.specials = 0.0
        self.int_ops = 0.0
        self.load_bytes = 0.0
        self.store_bytes = 0.0
        # Streaming traffic (AD value caches: written once, read once,
        # far beyond cache capacity -> pure DRAM bandwidth).
        self.stream_bytes = 0.0
        self.atomic_ops = 0.0
        self.reduction_ops = 0.0
        self.calls = 0.0
        # Operator-overloading baseline (CoDiPack model) taping work.
        self.tape_ops = 0.0
        self.tape_bytes = 0.0
        self.alloc_bytes = 0.0

    # ------------------------------------------------------------------
    def add_class(self, cost_class: str, width: float) -> None:
        if cost_class == "flop":
            self.flops += width
        elif cost_class == "div":
            self.divs += width
        elif cost_class == "special":
            self.specials += width
        elif cost_class == "int":
            self.int_ops += width
        # "free" falls through.

    def add_load(self, nbytes: float) -> None:
        self.load_bytes += nbytes

    def add_store(self, nbytes: float) -> None:
        self.store_bytes += nbytes

    def add_stream(self, nbytes: float) -> None:
        self.stream_bytes += nbytes

    def add_atomic(self, count: float, nbytes: float) -> None:
        self.atomic_ops += count
        self.store_bytes += nbytes
        self.load_bytes += nbytes

    def add_reduction(self, count: float) -> None:
        self.reduction_ops += count

    def add_tape(self, ops: float, nbytes: float) -> None:
        self.tape_ops += ops
        self.tape_bytes += nbytes

    # ------------------------------------------------------------------
    def merge(self, other: "CostVector") -> None:
        # Unrolled (hot in per-thread phase accounting): direct slot
        # adds are ~4x cheaper than a getattr/setattr loop.
        self.flops += other.flops
        self.divs += other.divs
        self.specials += other.specials
        self.int_ops += other.int_ops
        self.load_bytes += other.load_bytes
        self.store_bytes += other.store_bytes
        self.stream_bytes += other.stream_bytes
        self.atomic_ops += other.atomic_ops
        self.reduction_ops += other.reduction_ops
        self.calls += other.calls
        self.tape_ops += other.tape_ops
        self.tape_bytes += other.tape_bytes
        self.alloc_bytes += other.alloc_bytes

    def copy(self) -> "CostVector":
        c = CostVector()
        c.merge(self)
        return c

    @property
    def mem_bytes(self) -> float:
        return self.load_bytes + self.store_bytes

    @property
    def total_flops(self) -> float:
        return self.flops + self.divs + self.specials

    def is_zero(self) -> bool:
        return all(getattr(self, s) == 0 for s in CostVector.__slots__)

    def as_dict(self) -> dict:
        return {s: getattr(self, s) for s in CostVector.__slots__}

    def __repr__(self) -> str:
        nz = {k: v for k, v in self.as_dict().items() if v}
        return f"CostVector({nz})"
