#!/usr/bin/env python
"""Forward vs reverse mode on a parallel program (paper §III).

Forward mode is efficient for few inputs / many outputs, reverse mode
for many inputs / few outputs.  This example differentiates the same
parallel kernel both ways, shows the JVP/VJP duality numerically, and
compares the *generated code shapes*: forward mode keeps one parallel
region and allocates no caches, reverse mode splits into the augmented
forward + reverse regions of paper Fig. 4.
"""

import numpy as np

from repro import (
    Duplicated,
    ExecConfig,
    Executor,
    I64,
    IRBuilder,
    Ptr,
    autodiff,
    autodiff_forward,
)


def main() -> None:
    b = IRBuilder()
    with b.function("k", [("x", Ptr()), ("y", Ptr()), ("n", I64)]) as f:
        x, y, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(x, i)
            b.store(b.sin(v) * b.exp(v * 0.2), y, i)

    rev = autodiff(b.module, "k", [Duplicated, Duplicated, None])
    fwd = autodiff_forward(b.module, "k", [Duplicated, Duplicated, None])

    def regions(fn_name):
        fn = b.module.functions[fn_name]
        pf = sum(1 for op in fn.walk() if op.opcode == "parallel_for")
        caches = sum(1 for op in fn.walk() if op.opcode == "alloc"
                     and op.attrs.get("stream"))
        return pf, caches

    print("generated code shapes:")
    print(f"  reverse : {regions(rev)[0]} parallel regions, "
          f"{regions(rev)[1]} cache buffers  (aug fwd + reverse, Fig. 4)")
    print(f"  forward : {regions(fwd)[0]} parallel region,  "
          f"{regions(fwd)[1]} cache buffers  (tangents in program order)")

    n = 10
    rng = np.random.default_rng(1)
    x0 = rng.uniform(0.1, 1.5, n)
    u = rng.normal(size=n)

    # JVP along u
    dy = np.zeros(n)
    Executor(b.module, ExecConfig(num_threads=4)).run(
        fwd, x0.copy(), u.copy(), np.zeros(n), dy, n)
    jvp = dy.sum()

    # VJP with all-ones output seed
    dx = np.zeros(n)
    Executor(b.module, ExecConfig(num_threads=4)).run(
        rev, x0.copy(), dx, np.zeros(n), np.ones(n), n)
    vjp = float(dx @ u)

    print(f"\nJVP . 1  = {jvp:.12f}")
    print(f"u  . VJP = {vjp:.12f}")
    assert abs(jvp - vjp) < 1e-10
    print("forward and reverse agree (duality check).")


if __name__ == "__main__":
    main()
