#!/usr/bin/env python
"""Differentiating hybrid MPI + OpenMP parallelism in one program.

The paper's §I highlights that "jointly supporting these parallelism
models in one tool naturally enables differentiation of hybrid parallel
programs".  This example runs LULESH with 8 MPI ranks x OpenMP threads
and shows the gradient scaling with both axes.
"""

from repro.apps.lulesh import LuleshApp

STEPS = 3


def main() -> None:
    print("LULESH hybrid MPI x OpenMP (fixed total problem size)\n")
    print(f"{'ranks':>6} {'threads':>8} {'cores':>6} "
          f"{'forward':>12} {'gradient':>12} {'overhead':>9}")
    base = None
    for pr, nx, threads in ((1, 8, 1), (2, 4, 1), (2, 4, 2), (2, 4, 4),
                            (2, 4, 8)):
        app = LuleshApp("hybrid", nx=nx, pr=pr)
        fwd = app.run_forward(app.make_domains(), STEPS, threads)
        grad = app.run_gradient(app.make_domains(), STEPS, threads)
        if base is None:
            base = fwd.time
        print(f"{pr ** 3:>6} {threads:>8} {pr ** 3 * threads:>6} "
              f"{fwd.time:>12.3e} {grad.time:>12.3e} "
              f"{grad.time / fwd.time:>8.2f}x   "
              f"(speedup {base / fwd.time:.2f}x)")
    print("\nThe reverse pass communicates through shadow requests "
          "(paper Fig. 5) while its parallel loops reverse into "
          "parallel loops (Fig. 4) — both parallelism levels survive "
          "differentiation.")


if __name__ == "__main__":
    main()
