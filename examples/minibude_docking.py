#!/usr/bin/env python
"""Gradient-based pose refinement with the differentiated miniBUDE.

The paper's second application evaluates binding energies over many
candidate poses.  With the Enzyme-style gradient we get d(energy)/d(pose
parameters) for *every* pose in one reverse sweep — and can run a few
steps of gradient descent to relax the poses, something the original
miniBUDE cannot do at all.
"""

import numpy as np

from repro.apps.minibude import MinibudeApp, make_deck


def main() -> None:
    deck = make_deck(nprotein=24, nligand=8, nposes=32)
    app = MinibudeApp("openmp", deck)

    res = app.run_forward(num_threads=8)
    print(f"initial energies: best={res.energies.min():.4f} "
          f"mean={res.energies.mean():.4f} "
          f"(simulated {res.time:.3e}s on 8 threads)")

    # A few steps of gradient descent on all poses simultaneously.
    lr = 2e-3
    for it in range(8):
        shadows, g = app.run_gradient(num_threads=8)
        dposes = shadows["poses"]
        deck.poses[...] -= lr * dposes.reshape(deck.poses.shape)
        res = app.run_forward(num_threads=8)
        print(f"iter {it}: best={res.energies.min():.4f} "
              f"mean={res.energies.mean():.4f} "
              f"|g|={np.abs(dposes).mean():.3f} "
              f"grad overhead={g.time / res.time:.2f}x")

    final = app.run_forward(num_threads=8)
    print(f"\nrefined energies: best={final.energies.min():.4f} "
          f"mean={final.energies.mean():.4f}")
    print("(every pose relaxed with one reverse-mode sweep per step)")

    # Also show the Julia-tasks variant agreeing bit-for-bit.
    app_jl = MinibudeApp("julia", deck)
    res_jl = app_jl.run_forward(num_threads=8)
    np.testing.assert_allclose(res_jl.energies, final.energies, rtol=1e-10)
    print("Julia-tasks variant matches the OpenMP energies.")


if __name__ == "__main__":
    main()
