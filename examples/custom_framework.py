#!/usr/bin/env python
"""Teaching the AD engine a new parallel framework (paper §V).

Enabling a framework takes the paper's three steps:

  1. *identify* the parallelism (a runtime call or a marked construct),
  2. tell the engine *how to call* it with the generated derivative,
  3. mark what must be *preserved* for the adjoint.

Here we register a toy "pet runtime" whose ``pet.launch``-style
construct is just a marked ``parallel_for`` (step 1 is the
framework tag; steps 2-3 fall out of the generic region handlers —
the same reason RAJA needs zero explicit support, §V-D).  We then add
a *custom reduction* to the catalog (§VI-A1) and show the engine
using it instead of atomics for a loop-uniform accumulation.
"""

import contextlib

import numpy as np

from repro import Duplicated, ExecConfig, Executor, I64, IRBuilder, Ptr, \
    autodiff, print_function
from repro.ad.tls import DEFAULT_REDUCTIONS


class PetRuntime:
    """A 'new' parallel framework lowering onto the generic substrate."""

    def __init__(self, b: IRBuilder) -> None:
        self.b = b

    @contextlib.contextmanager
    def launch(self, n, name: str = "i"):
        # Step 1: the construct is identified by its framework tag —
        # like marking Base.threads_for for Julia's JIT (§V-A).
        with self.b.parallel_for(0, n, framework="pet", name=name) as i:
            yield i


def main() -> None:
    # Step "0": optionally register a reduction for the framework.
    DEFAULT_REDUCTIONS.register("f64", "add")   # idempotent default

    b = IRBuilder()
    with b.function("weighted", [("x", Ptr()), ("w", Ptr()),
                                 ("out", Ptr()), ("n", I64)]) as f:
        x, w, out, n = f.args
        pet = PetRuntime(b)
        with pet.launch(n) as i:
            scale = b.load(w, 0)           # loop-uniform read
            v = b.load(x, i)
            b.store(v * scale, out, i)

    grad = autodiff(b.module, "weighted", [Duplicated, Duplicated,
                                           Duplicated, None])
    g = b.module.functions[grad]
    print(print_function(g))

    reductions = [op for op in g.walk()
                  if op.opcode == "atomic"
                  and op.attrs.get("via") == "reduction"]
    print(f"loop-uniform shadow increments lowered to the registered "
          f"reduction: {len(reductions)} site(s) "
          f"(instead of per-iteration atomics)\n")

    n = 8
    x = np.arange(1.0, n + 1.0)
    dx = np.zeros(n)
    w = np.array([2.5])
    dw = np.zeros(1)
    out = np.zeros(n)
    dout = np.ones(n)
    Executor(b.module, ExecConfig(num_threads=4)).run(
        grad, x, dx, w, dw, out, dout, n)
    print("d/dx =", dx, " (expect 2.5 everywhere)")
    print("d/dw =", dw, " (expect sum(x) =", x.sum(), ")")
    assert np.allclose(dx, 2.5)
    assert np.allclose(dw, x.sum())
    print("OK — the 'pet' framework differentiates with zero "
          "framework-specific adjoint code.")


if __name__ == "__main__":
    main()
