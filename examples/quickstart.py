#!/usr/bin/env python
"""Quickstart: differentiate a parallel program with the repro Enzyme.

Reproduces the paper's running example (Figs. 3-4): an OpenMP-style
parallel loop squaring an array, differentiated at the compiler level.
The generated gradient contains exactly the structure of Fig. 4 — an
augmented forward parallel region that caches the overwritten inputs
plus a reverse parallel region that replays them.
"""

import numpy as np

from repro import (
    Duplicated,
    ExecConfig,
    Executor,
    I64,
    IRBuilder,
    Ptr,
    autodiff,
    print_function,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Write the program (this is the role of the C++/Julia frontend).
    # ------------------------------------------------------------------
    b = IRBuilder()
    with b.function("square", [("data", Ptr()), ("n", I64)]) as f:
        data, n = f.args
        with b.parallel_for(0, n) as i:
            v = b.load(data, i)
            b.store(v * v, data, i)

    print("primal IR:")
    print(print_function(b.module.functions["square"]))

    # ------------------------------------------------------------------
    # 2. Differentiate it.  `Duplicated` follows Enzyme's convention:
    #    the pointer argument is followed by its shadow in the gradient
    #    signature; output shadows act as seeds.
    # ------------------------------------------------------------------
    grad = autodiff(b.module, "square", [Duplicated, None])
    print("generated gradient IR (note the two parallel regions — the")
    print("augmented forward and the reverse pass of paper Fig. 4):")
    print(print_function(b.module.functions[grad]))

    # ------------------------------------------------------------------
    # 3. Run both on the simulated 64-core machine.
    # ------------------------------------------------------------------
    n = 16
    x = np.arange(1.0, n + 1)
    ex = Executor(b.module, ExecConfig(num_threads=8))
    ex.run("square", x.copy(), n)

    x0 = np.arange(1.0, n + 1)
    dx = np.ones(n)           # seed: d(sum of outputs)/d(output_i) = 1
    ex = Executor(b.module, ExecConfig(num_threads=8))
    ex.run(grad, x0.copy(), dx, n)

    print("x           =", np.arange(1.0, n + 1))
    print("d(x^2)/dx   =", dx)
    assert np.allclose(dx, 2.0 * np.arange(1.0, n + 1))
    print(f"\nsimulated gradient time on 8 threads: {ex.clock:.3e} s")
    print("OK")


if __name__ == "__main__":
    main()
