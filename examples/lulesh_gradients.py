#!/usr/bin/env python
"""Differentiate the LULESH shock-hydrodynamics proxy end to end.

Runs the Sedov blast forward under several parallel frameworks, then
computes d(final energy)/d(initial coordinates & energy) with the
Enzyme-style compiler AD — the paper's flagship demonstration — and
cross-checks one variant against the CoDiPack-style tape baseline and
finite differences (§VII's projection test).
"""

import numpy as np

from repro.apps.lulesh import LuleshApp

STEPS = 4


def run_variant(flavor: str, pr: int = 1, num_threads: int = 1) -> None:
    app = LuleshApp(flavor, nx=3 if pr == 1 else 2, pr=pr)
    doms = app.make_domains()
    fwd = app.run_forward(doms, STEPS, num_threads)
    e_final = sum(d["e"].sum() for d in doms)

    doms = app.make_domains()
    shadows = [d.shadow_arrays(0.0) for d in doms]
    for sh in shadows:
        sh["e"][...] = 1.0            # seed: objective = sum final energy
    grad = app.run_gradient(doms, STEPS, num_threads, shadows)
    g_norm = sum(float(np.abs(sh["x"]).sum() + np.abs(sh["e"]).sum())
                 for sh in shadows)
    print(f"{flavor:10s} ranks={pr ** 3} threads={num_threads}: "
          f"E_final={e_final:.6e}  |dE/dinputs|_1={g_norm:.6e}  "
          f"fwd={fwd.time:.3e}s grad={grad.time:.3e}s "
          f"overhead={grad.time / fwd.time:.2f}x")
    return shadows


def main() -> None:
    print("LULESH Sedov blast, Lagrange leapfrog,", STEPS, "steps\n")
    run_variant("serial")
    run_variant("openmp", num_threads=8)
    run_variant("raja", num_threads=8)
    run_variant("julia")
    run_variant("mpi", pr=2)
    run_variant("hybrid", pr=2, num_threads=2)
    run_variant("julia_mpi", pr=2)

    # Cross-check: Enzyme gradient vs the operator-overloading tape.
    print("\ncross-checking Enzyme vs CoDiPack-model tape (serial)...")
    app = LuleshApp("serial", nx=2)
    doms = app.make_domains()
    shadows = [d.shadow_arrays(0.0) for d in doms]
    shadows[0]["e"][...] = 1.0
    app.run_gradient(doms, STEPS, 1, shadows)
    doms2 = app.make_domains()
    _res, tapes = app.run_codipack_gradient(doms2, STEPS)
    for f in ("x", "y", "z", "e"):
        np.testing.assert_allclose(shadows[0][f],
                                   tapes[0].gradient_of(doms2[0][f]),
                                   rtol=1e-7, atol=1e-9)
    print("tape and Enzyme derivatives agree.")

    print("\nfinite-difference projection check (SVII)...")
    rev, fd = app.projection_check(steps=STEPS)
    print(f"reverse={rev:.6f}  fd={fd:.6f}  "
          f"rel err={abs(rev - fd) / abs(fd):.2e}")
    print("OK")


if __name__ == "__main__":
    main()
